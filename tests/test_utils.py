"""Tests for RNG stream management and validation helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import RngRegistry, derive_rng, spawn_seeds
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestDeriveRng:
    def test_same_key_same_stream(self):
        a = derive_rng(42, "link", 1, 2)
        b = derive_rng(42, "link", 1, 2)
        assert np.array_equal(a.random(10), b.random(10))

    def test_different_keys_differ(self):
        a = derive_rng(42, "link", 1, 2)
        b = derive_rng(42, "link", 2, 1)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_different_seeds_differ(self):
        a = derive_rng(1, "x")
        b = derive_rng(2, "x")
        assert not np.array_equal(a.random(10), b.random(10))

    def test_string_hash_stable(self):
        """String keys map identically across calls (no hash salting)."""
        a = derive_rng(0, "routing")
        b = derive_rng(0, "routing")
        assert a.random() == b.random()

    def test_rejects_bad_key_parts(self):
        with pytest.raises(TypeError):
            derive_rng(0, 1.5)
        with pytest.raises(TypeError):
            derive_rng(0, True)


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(7, 5) == spawn_seeds(7, 5)

    def test_distinct(self):
        seeds = spawn_seeds(7, 20)
        assert len(set(seeds)) == 20

    def test_zero(self):
        assert spawn_seeds(7, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(7, -1)


class TestRngRegistry:
    def test_returns_same_generator_object(self):
        reg = RngRegistry(5)
        assert reg.get("a", 1) is reg.get("a", 1)

    def test_state_advances(self):
        reg = RngRegistry(5)
        x = reg.get("a").random()
        y = reg.get("a").random()
        assert x != y

    def test_len_counts_streams(self):
        reg = RngRegistry(5)
        reg.get("a")
        reg.get("b", 1)
        reg.get("a")
        assert len(reg) == 2
        assert set(reg.known_streams()) == {("a",), ("b", 1)}

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(5).get()

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry("seed")

    def test_registry_matches_derive(self):
        reg = RngRegistry(9)
        direct = derive_rng(9, "link", 3, 4)
        assert reg.get("link", 3, 4).random() == direct.random()


class TestValidation:
    def test_probability(self):
        assert check_probability(0.5, "p") == 0.5
        assert check_probability(0, "p") == 0.0
        for bad in [-0.01, 1.01, float("nan")]:
            with pytest.raises(ValueError):
                check_probability(bad, "p")

    def test_positive(self):
        assert check_positive(1e-9, "x") == 1e-9
        for bad in [0.0, -1.0, float("inf"), float("nan")]:
            with pytest.raises(ValueError):
                check_positive(bad, "x")

    def test_non_negative(self):
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-1e-9, "x")

    def test_in_range_inclusive(self):
        assert check_in_range(1.0, "x", 1.0, 2.0) == 1.0
        assert check_in_range(2.0, "x", 1.0, 2.0) == 2.0
        with pytest.raises(ValueError):
            check_in_range(2.01, "x", 1.0, 2.0)

    def test_in_range_exclusive(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, "x", 1.0, 2.0, inclusive=(False, True))
        assert check_in_range(1.5, "x", 1.0, 2.0, inclusive=(False, False)) == 1.5

    def test_error_message_names_parameter(self):
        with pytest.raises(ValueError, match="my_param"):
            check_probability(2.0, "my_param")

    def test_check_type(self):
        assert check_type(5, "n", int) == 5
        assert check_type("s", "n", (int, str)) == "s"
        with pytest.raises(TypeError, match="n must be"):
            check_type(5.0, "n", int)


@given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=0, max_value=100))
def test_property_streams_reproducible(seed, key):
    a = derive_rng(seed, "s", key).integers(0, 1_000_000, size=5)
    b = derive_rng(seed, "s", key).integers(0, 1_000_000, size=5)
    assert np.array_equal(a, b)
