"""Golden-trace regression tests.

Each case freezes the full ``run_comparison`` output — per-link error
maps, accuracy percentiles, overhead bit counts, delivery and churn —
as a JSON fixture under ``tests/fixtures/golden/``. Any change to the
simulator, estimators, codecs, or seed discipline that shifts a single
float shows up as a diff against the fixture.

JSON floats round-trip exactly (``json`` serializes via ``repr``), so
the comparison is bitwise on every numeric field, not approximate.

To rebless after an intentional behavioural change::

    PYTHONPATH=src python -m pytest tests/regression -q --regen-golden

then review the fixture diff like any other code change.
"""

import json
from pathlib import Path

import pytest

from repro.workloads import (
    dophy_approach,
    dynamic_rgg_scenario,
    line_scenario,
    path_measurement_approach,
    run_comparison,
    tree_ratio_approach,
)

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "fixtures" / "golden"

#: (fixture name, scenario, approaches, seed) — two scenarios, three seeds.
CASES = [
    (
        "line6_seed13",
        lambda: line_scenario(6, duration=120.0, traffic_period=3.0),
        lambda: (dophy_approach(), path_measurement_approach(), tree_ratio_approach()),
        13,
    ),
    (
        "line6_seed21",
        lambda: line_scenario(6, duration=120.0, traffic_period=3.0),
        lambda: (dophy_approach(), path_measurement_approach(), tree_ratio_approach()),
        21,
    ),
    (
        "dynamic_rgg16_seed34",
        lambda: dynamic_rgg_scenario(16, duration=80.0, traffic_period=4.0),
        lambda: (dophy_approach(), tree_ratio_approach()),
        34,
    ),
]

IDS = [c[0] for c in CASES]


def _link_key(link):
    return f"{link[0]}->{link[1]}"


def _accuracy_to_json(acc):
    return {
        "method": acc.method,
        "n_links_compared": acc.n_links_compared,
        "n_links_truth": acc.n_links_truth,
        "mae": acc.mae,
        "rmse": acc.rmse,
        "median_error": acc.median_error,
        "p90_error": acc.p90_error,
        "max_error": acc.max_error,
        "cdf": {repr(level): frac for level, frac in acc.cdf.items()},
        "per_link_errors": {
            _link_key(link): err for link, err in sorted(acc.per_link_errors.items())
        },
    }


def _overhead_to_json(ov):
    return {
        "method": ov.method,
        "packets": ov.packets,
        "total_annotation_bits": ov.total_annotation_bits,
        "control_bits": ov.control_bits,
        "mean_bits_per_packet": ov.mean_bits_per_packet,
        "p95_bits_per_packet": ov.p95_bits_per_packet,
        "mean_bits_per_hop": ov.mean_bits_per_hop,
        "frame_fraction": ov.frame_fraction,
    }


def _trace(scenario, approaches, seed, scenario_cache_dir=None):
    rows, result = run_comparison(
        scenario, approaches, seed=seed, scenario_cache_dir=scenario_cache_dir
    )
    return {
        "seed": seed,
        "summary": {
            "packets_generated": result.ground_truth.packets_generated,
            "packets_delivered": len(result.delivered_packets),
            "delivery_ratio": result.delivery_ratio,
            "churn_rate": result.churn_rate,
        },
        "rows": {
            name: {
                "accuracy": _accuracy_to_json(row.accuracy),
                "overhead": _overhead_to_json(row.overhead),
                "delivery_ratio": row.delivery_ratio,
                "churn_rate": row.churn_rate,
            }
            for name, row in sorted(rows.items())
        },
    }


@pytest.mark.parametrize("engine", ["event", "array"])
@pytest.mark.parametrize("name,scenario_fn,approaches_fn,seed", CASES, ids=IDS)
def test_golden_trace(request, name, scenario_fn, approaches_fn, seed, engine):
    # Both engines are checked against the SAME fixture: the array kernel
    # (net/fastsim.py) is observably bit-identical to the event oracle,
    # so switching engines must never require a rebless.
    scenario = scenario_fn().with_config(engine=engine)
    trace = _trace(scenario, approaches_fn(), seed)
    path = GOLDEN_DIR / f"{name}.json"
    if request.config.getoption("--regen-golden"):
        if engine != "event":
            pytest.skip("fixtures are blessed from the event oracle only")
        path.write_text(json.dumps(trace, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden fixture {path.name}; generate it with --regen-golden"
    )
    frozen = json.loads(path.read_text())
    assert trace == frozen, (
        f"{name}: run_comparison output drifted from the golden trace; "
        "if the change is intentional, rebless with --regen-golden"
    )


@pytest.mark.parametrize("engine", ["event", "array"])
def test_golden_trace_through_scenario_cache(request, tmp_path, engine):
    """The same unregenerated fixtures, served via the built-scenario
    cache — cold on the first pass, warm on the second. A cache or fork
    that shifted a single float would surface as fixture drift here."""
    if request.config.getoption("--regen-golden"):
        pytest.skip("fixtures are blessed by test_golden_trace only")
    for temperature in ("cold", "warm"):
        for name, scenario_fn, approaches_fn, seed in CASES:
            scenario = scenario_fn().with_config(engine=engine)
            trace = _trace(
                scenario,
                approaches_fn(),
                seed,
                scenario_cache_dir=str(tmp_path),
            )
            frozen = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
            assert trace == frozen, (
                f"{name} ({engine}, cache {temperature}): cache-served "
                "run drifted from the golden trace"
            )
