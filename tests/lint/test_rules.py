"""Per-rule positive/negative coverage for reprolint.

Each RPL rule gets at least one fixture file full of violations and one
that must come back clean; a handful of inline-source cases pin down the
trickier resolution behaviour (aliases, scoping, seeded constructors).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import lint_file, lint_source

FIXTURES = Path(__file__).parent / "fixtures"


def rules_in(path: Path) -> set:
    return {v.rule for v in lint_file(path)}


# -- fixture files: one positive and one negative per rule ---------------------------

@pytest.mark.parametrize(
    "fixture, rule",
    [
        ("rpl001_bad.py", "RPL001"),
        ("core/rpl002_bad.py", "RPL002"),
        ("rpl003_bad.py", "RPL003"),
        ("rpl004_bad.py", "RPL004"),
        ("rpl005_bad.py", "RPL005"),
        ("rpl006_bad.py", "RPL006"),
        ("rpl007_bad.py", "RPL007"),
        ("stream/rpl008_bad.py", "RPL008"),
        ("stream/rpl009_bad.py", "RPL009"),
        ("cache/rpl010_bad.py", "RPL010"),
    ],
)
def test_positive_fixture_flags_only_its_rule(fixture, rule):
    found = rules_in(FIXTURES / fixture)
    assert found == {rule}


@pytest.mark.parametrize(
    "fixture",
    [
        "rpl001_ok.py",
        "rpl002_ok_bench.py",
        "rpl003_ok.py",
        "rpl004_ok.py",
        "rpl005_ok.py",
        "rpl006_ok.py",
        "rpl007_ok.py",
        "stream/rpl008_ok.py",
        "stream/rpl009_ok.py",
        "cache/rpl010_ok.py",
        "suppressed_ok.py",
    ],
)
def test_negative_fixture_is_clean(fixture):
    assert lint_file(FIXTURES / fixture) == []


# -- RPL001: alias resolution and seeding -------------------------------------------

def test_rpl001_numpy_alias_spellings():
    src = "import numpy\nnumpy.random.shuffle([1, 2])\n"
    assert [v.rule for v in lint_source(src)] == ["RPL001"]
    src = "import numpy.random as npr\nnpr.randint(3)\n"
    assert [v.rule for v in lint_source(src)] == ["RPL001"]


def test_rpl001_seeded_constructors_allowed():
    src = (
        "import numpy as np\n"
        "a = np.random.default_rng(7)\n"
        "b = np.random.default_rng(seed=7)\n"
        "c = np.random.PCG64(1)\n"
    )
    assert lint_source(src) == []


def test_rpl001_unseeded_random_instance():
    assert [v.rule for v in lint_source("import random\nr = random.Random()\n")] == [
        "RPL001"
    ]
    assert lint_source("import random\nr = random.Random(42)\n") == []


# -- RPL002: scope is sim paths only -------------------------------------------------

def test_rpl002_scoped_by_path():
    src = "import time\nt = time.time()\n"
    assert [v.rule for v in lint_source(src, "src/repro/net/sim.py")] == ["RPL002"]
    assert lint_source(src, "benchmarks/bench_x.py") == []


def test_rpl002_explicit_override_beats_path():
    src = "import os\nos.urandom(4)\n"
    assert lint_source(src, "anywhere.py", in_sim_path=True) != []
    assert lint_source(src, "src/repro/core/x.py", in_sim_path=False) == []


# -- RPL003: boundary-crossing callables ---------------------------------------------

def test_rpl003_lambda_keyword_into_boundary_call():
    src = "run_replicated(scenario, approaches, extract=lambda o, r: o)\n"
    assert [v.rule for v in lint_source(src)] == ["RPL003"]


def test_rpl003_event_callbacks_not_flagged():
    # Same-process scheduling callbacks are outside this rule's scope.
    src = "sim.after(0.0, lambda: None)\n"
    assert lint_source(src) == []


def test_rpl003_registry_subscript_assignment():
    src = "SCENARIOS = {}\nSCENARIOS['x'] = lambda: 1\n"
    assert [v.rule for v in lint_source(src)] == ["RPL003"]


# -- RPL004 --------------------------------------------------------------------------

def test_rpl004_sorted_wrapping_is_clean():
    assert lint_source("x = list(sorted({3, 1, 2}))\n") == []
    assert [v.rule for v in lint_source("x = list({3, 1, 2})\n")] == ["RPL004"]


# -- RPL005 --------------------------------------------------------------------------

def test_rpl005_lambda_defaults_flagged():
    assert [v.rule for v in lint_source("f = lambda x=[]: x\n")] == ["RPL005"]


def test_rpl005_unfrozen_dataclass_body_not_flagged():
    # Plain dataclasses already reject mutable defaults at runtime; the
    # class-attribute arm of RPL005 targets frozen specs specifically.
    src = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class C:\n"
        "    x: int = 0\n"
    )
    assert lint_source(src) == []


def test_violation_fields_and_ordering():
    src = "import random\nrandom.seed(1)\nrandom.random()\n"
    first, second = lint_source(src, "m.py")
    assert (first.path, first.line, first.rule) == ("m.py", 2, "RPL001")
    assert second.line == 3
    assert "m.py:2:" in first.render_text()
