"""Regenerate tests/lint/fixtures/golden.json after deliberate rule changes.

Run from the repo root: ``PYTHONPATH=src python tests/lint/regen_golden.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import lint_file

FIXTURES = Path(__file__).parent / "fixtures"


def main() -> None:
    violations = []
    for path in sorted(FIXTURES.rglob("*.py")):
        rel = path.relative_to(FIXTURES).as_posix()
        violations.extend(v.as_json() for v in lint_file(path, display=rel))
    violations.sort(key=lambda v: (v["path"], v["line"], v["col"], v["rule"]))
    out = FIXTURES / "golden.json"
    out.write_text(json.dumps({"violations": violations}, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(violations)} violations to {out}")


if __name__ == "__main__":
    main()
