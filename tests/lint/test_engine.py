"""Engine-level behaviour: suppressions, walking, error handling, golden JSON."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import LintError, lint_file, lint_paths, lint_source
from repro.lint.engine import iter_python_files

FIXTURES = Path(__file__).parent / "fixtures"


# -- suppressions --------------------------------------------------------------------

def test_same_line_suppression_is_rule_specific():
    src = "import random\nrandom.random()  # reprolint: disable=RPL001\n"
    assert lint_source(src) == []
    # Suppressing a different rule leaves the violation in place.
    src = "import random\nrandom.random()  # reprolint: disable=RPL004\n"
    assert [v.rule for v in lint_source(src)] == ["RPL001"]


def test_bare_disable_suppresses_everything():
    src = "import random\nx = list({1, 2}) or random.random()  # reprolint: disable\n"
    assert lint_source(src) == []


def test_disable_next_line():
    src = (
        "import random\n"
        "# reprolint: disable-next-line=RPL001\n"
        "random.random()\n"
        "random.random()\n"
    )
    assert [v.line for v in lint_source(src)] == [4]


def test_disable_next_line_covers_multi_line_statement():
    src = (
        "import random\n"
        "# reprolint: disable-next-line=RPL001\n"
        "x = (random.random()\n"
        "     + random.random())\n"
        "y = random.random()\n"
    )
    # Both draws inside the suppressed logical statement are covered;
    # the statement after it is not.
    assert [v.line for v in lint_source(src)] == [5]


def test_disable_next_line_covers_decorated_def_signature():
    src = (
        "import functools\n"
        "# reprolint: disable-next-line=RPL005\n"
        "@functools.lru_cache\n"
        "def f(xs=[]):\n"
        "    return xs\n"
    )
    assert lint_source(src) == []


def test_disable_next_line_does_not_leak_into_def_body():
    src = (
        "import random\n"
        "# reprolint: disable-next-line=RPL001\n"
        "def f():\n"
        "    return random.random()\n"
    )
    assert [v.line for v in lint_source(src)] == [4]


def test_disable_next_line_stack_accumulates():
    src = (
        "import random\n"
        "# reprolint: disable-next-line=RPL001\n"
        "# reprolint: disable-next-line=RPL004\n"
        "x = list({random.random()})\n"
    )
    assert lint_source(src) == []


def test_disable_next_line_survives_interleaved_plain_comment():
    src = (
        "import random\n"
        "# reprolint: disable-next-line=RPL001\n"
        "# an unrelated comment\n"
        "random.random()\n"
    )
    assert lint_source(src) == []


def test_pragma_inside_string_is_not_a_suppression():
    src = (
        "import random\n"
        "note = '# reprolint: disable=RPL001'\n"
        "random.random()\n"
    )
    assert [v.rule for v in lint_source(src)] == ["RPL001"]


def test_multiple_rules_one_pragma():
    src = "import random\nx = list({random.random()})  # reprolint: disable=RPL001,RPL004\n"
    assert lint_source(src) == []


# -- walking & errors ----------------------------------------------------------------

def test_iter_python_files_skips_pycache_and_dedupes(tmp_path):
    (tmp_path / "a.py").write_text("x = 1\n")
    cache = tmp_path / "__pycache__"
    cache.mkdir()
    (cache / "a.cpython-311.py").write_text("x = 1\n")
    files = list(iter_python_files([tmp_path, tmp_path / "a.py"]))
    assert files == [tmp_path / "a.py"]


def test_lint_paths_counts_files(tmp_path):
    (tmp_path / "ok.py").write_text("x = 1\n")
    (tmp_path / "bad.py").write_text("import random\nrandom.random()\n")
    violations, count = lint_paths([tmp_path])
    assert count == 2
    assert [v.rule for v in violations] == ["RPL001"]


def test_missing_path_raises():
    with pytest.raises(LintError):
        lint_paths([FIXTURES / "does_not_exist"])


def test_syntax_error_raises_lint_error(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    with pytest.raises(LintError):
        lint_file(broken)


# -- golden JSON over the fixture corpus ---------------------------------------------

def test_fixture_corpus_matches_golden_json():
    """Every fixture violation, as JSON, pinned against a golden file.

    Regenerate (after deliberate rule changes) with::

        PYTHONPATH=src python tests/lint/regen_golden.py
    """
    violations = []
    for path in sorted(FIXTURES.rglob("*.py")):
        rel = path.relative_to(FIXTURES).as_posix()
        violations.extend(v.as_json() for v in lint_file(path, display=rel))
    violations.sort(key=lambda v: (v["path"], v["line"], v["col"], v["rule"]))
    golden = json.loads((FIXTURES / "golden.json").read_text())
    assert violations == golden["violations"]
