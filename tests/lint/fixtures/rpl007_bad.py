"""RPL007 positive fixture: RNG draws under unordered iteration.

Two shapes: a direct loop over a set literal, and a call site passing a
set to a function that draws per element (the flow-sensitive half).

Runtime twin: ``tests/sanitize/test_rule_runtime_pin.py`` calls
``fold_weights`` with two different element orders — the per-element
``uniform(0, len(tag))`` draws scale by the element, so the fingerprints
diverge at the first position where the orders disagree.
"""


def fold_weights(tags, rng):
    """One order-sensitive draw per element of ``tags``."""
    total = 0.0
    for tag in tags:
        total += rng.uniform(0.0, float(len(tag)))
    return total


def collect(rng):
    labels = {"alpha", "beta", "gamma", "delta"}
    out = []
    for label in labels:
        out.append(rng.uniform(0.0, float(len(label))))
    return out


def run(rng):
    return fold_weights({"n1", "n22", "n333"}, rng)
