"""RPL006 negative fixture: each consumer derives its own substream."""

from repro.utils.rng import derive_rng


def scalar_losses(master_seed, n):
    rng = derive_rng(master_seed, "losses", "scalar")
    return [rng.random() for _ in range(n)]


def buffered_losses(master_seed, n):
    rng = derive_rng(master_seed, "losses", "buffered")
    return rng.random(n)
