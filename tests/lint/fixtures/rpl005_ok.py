"""RPL005 negative fixture: immutable defaults and default_factory."""

from dataclasses import dataclass, field
from typing import Optional


def collect(value, bucket: Optional[list] = None):
    out = [] if bucket is None else bucket
    out.append(value)
    return out


@dataclass(frozen=True)
class FrozenSpec:
    name: str = "spec"
    weights: dict = field(default_factory=dict)
    bounds: tuple = (0.0, 1.0)
