"""RPL001 negative fixture: every draw comes from a threaded Generator."""

import numpy as np


def jitter(rng: np.random.Generator) -> float:
    return float(rng.uniform(-1.0, 1.0))


def seeded_stream(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def derived(seed: int) -> np.random.Generator:
    seq = np.random.SeedSequence(entropy=seed)
    return np.random.Generator(np.random.PCG64(seq))
