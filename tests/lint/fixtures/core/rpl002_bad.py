"""RPL002 positive fixture: host clocks/entropy in a sim path (core/)."""

import os
import time
import uuid
from datetime import datetime
from time import perf_counter


def stamp() -> float:
    return time.time()


def tick() -> float:
    return perf_counter()


def label() -> str:
    return f"{datetime.now()}-{uuid.uuid4()}"


def salt() -> bytes:
    return os.urandom(8)
