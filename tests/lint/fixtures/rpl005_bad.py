"""RPL005 positive fixture: shared mutable defaults."""

from dataclasses import dataclass, field


def collect(value, bucket=[]):
    bucket.append(value)
    return bucket


def tally(key, counts={}):
    counts[key] = counts.get(key, 0) + 1
    return counts


@dataclass(frozen=True)
class FrozenSpec:
    name: str = "spec"
    weights: dict = field(default={})
    tags: list = []
