"""RPL004 positive fixture: set order frozen into ordered sequences."""


def links_list(links: set):
    return list({(0, 1), (1, 2)})


def links_tuple(nodes):
    return tuple(set(nodes))


def describe(nodes):
    return ",".join({str(n) for n in nodes})


def squares(nodes):
    return [n * n for n in set(nodes)]
