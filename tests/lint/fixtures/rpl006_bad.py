"""RPL006 positive fixture: one module-level RNG stream, two consumers.

Runtime twin: ``tests/sanitize/test_rule_runtime_pin.py`` imports this
module fresh under two sanitize contexts and calls the consumers in
opposite orders — because they alias one stream, the swap shifts every
draw and the differ names the first divergent one.
"""

from repro.utils.rng import derive_rng

SHARED_RNG = derive_rng(1234, "fixture", "shared")


def scalar_losses(n):
    """The event-path spelling: one scalar draw per packet."""
    return [SHARED_RNG.random() for _ in range(n)]


def buffered_losses(n):
    """The array-path spelling: one batched draw."""
    return SHARED_RNG.random(n)
