"""Suppression fixture: every violation below is pragma-disabled."""

import random

import numpy as np


def jitter() -> float:
    return random.random()  # reprolint: disable=RPL001


def links_list(nodes):
    # reprolint: disable-next-line=RPL004
    return list(set(nodes))


def anything_goes(bucket=[]):  # reprolint: disable
    rng = np.random.default_rng()  # reprolint: disable=RPL001,RPL004
    return bucket, rng
