"""RPL001 positive fixture: global / unseeded RNG in every spelling."""

import random

import numpy as np
from numpy.random import rand
from random import randint


def jitter() -> float:
    return random.random()


def pick(items):
    return items[randint(0, len(items) - 1)]


def noise_matrix(n: int):
    np.random.seed(0)
    return rand(n, n)


def fresh_stream():
    return np.random.default_rng()
