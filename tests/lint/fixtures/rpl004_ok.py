"""RPL004 negative fixture: sets are sorted before materialisation."""


def links_list():
    return sorted({(0, 1), (1, 2)})


def links_tuple(nodes):
    return tuple(sorted(set(nodes)))


def describe(nodes):
    return ",".join(sorted({str(n) for n in nodes}))


def squares(nodes):
    return [n * n for n in sorted(set(nodes))]


def order_free(nodes):
    # Order-insensitive reductions over sets are fine.
    return sum(set(nodes)), max(set(nodes), default=0)
