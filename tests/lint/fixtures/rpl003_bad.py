"""RPL003 positive fixture: unpicklable callables at the process boundary."""

from functools import partial


class Scenario:  # stand-in for repro.workloads.scenarios.Scenario
    def __init__(self, name, topology_factory):
        self.name = name
        self.topology_factory = topology_factory


def make_scenario():
    return Scenario("bad", topology_factory=lambda seed: None)


def make_plan(duration: float):
    def local_plan(topology, seed):
        return None

    return Scenario("closure", local_plan)


def curried():
    return partial(lambda x: x, 1)


SCENARIO_REGISTRY = {
    "inline": lambda: Scenario("inline", None),
}
