"""RPL007 negative fixture: ``sorted(...)`` launders the iteration order."""


def fold_weights(tags, rng):
    total = 0.0
    for tag in sorted(tags):
        total += rng.uniform(0.0, float(len(tag)))
    return total


def collect(rng):
    labels = {"alpha", "beta", "gamma", "delta"}
    out = []
    for label in sorted(labels):
        out.append(rng.uniform(0.0, float(len(label))))
    return out


def run(rng):
    return fold_weights({"n1", "n22", "n333"}, rng)
