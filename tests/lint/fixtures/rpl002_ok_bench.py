"""RPL002 negative fixture: the same clock calls OUTSIDE a sim path.

Benches may time themselves; RPL002 only guards core/, net/,
workloads/ and exec/.
"""

import time


def timed(fn):
    t0 = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - t0
