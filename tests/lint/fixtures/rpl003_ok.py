"""RPL003 negative fixture: module-level callables + partials only."""

from functools import partial


class Scenario:  # stand-in for repro.workloads.scenarios.Scenario
    def __init__(self, name, topology_factory):
        self.name = name
        self.topology_factory = topology_factory


def line_topology(num_nodes: int, seed: int):
    return None


def make_scenario(num_nodes: int) -> Scenario:
    return Scenario("ok", topology_factory=partial(line_topology, num_nodes))


SCENARIO_REGISTRY = {
    "line": make_scenario,
}


def sort_key_lambdas_are_fine(items):
    # Lambdas that never cross a process boundary are not flagged.
    return sorted(items, key=lambda kv: kv[1])
