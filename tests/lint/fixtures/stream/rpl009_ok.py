"""RPL009 negative fixture: the drop is counted, so accounting balances."""


def decode_cost(record, rng):
    if record is None:
        raise ValueError("corrupt record")
    return rng.uniform(0.0, float(len(record)))


def drain(records, rng, stats):
    total = 0.0
    for record in records:
        try:
            total += decode_cost(record, rng)
        except ValueError:
            stats["dropped"] = stats.get("dropped", 0) + 1
    return total
