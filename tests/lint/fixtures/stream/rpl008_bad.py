"""RPL008 positive fixture: both must-precede edges inverted.

Uses the real stream-layer primitives so the runtime twin
(``tests/sanitize/test_rule_runtime_pin.py``) can execute these exact
functions under the sanitizer and watch
``verify_effect_protocol`` flag the same inversions the static rule
flags here.
"""

from repro.stream.checkpoint import save_checkpoint
from repro.stream.shard import shard_apply_task

MANIFEST = "fixture.manifest"


def bad_round(worker, records):
    """Applies evidence before spooling it: a crash between the two
    statements replays nothing, yet the estimator already counted."""
    delta = shard_apply_task(worker.payload(records))
    worker.absorb(delta, len(records))
    worker.log(records)


def bad_snapshot(worker, store, round_no):
    """Checkpoints before the manifest that must index it."""
    worker.checkpoint()
    save_checkpoint(
        store, MANIFEST, {"round_no": round_no, "watermark": worker.seq_logged}
    )
