"""RPL008 negative fixture: WAL append before apply, manifest before
checkpoint — the real sink's order."""

from repro.stream.checkpoint import save_checkpoint
from repro.stream.shard import shard_apply_task

MANIFEST = "fixture.manifest"


def good_round(worker, records):
    worker.log(records)
    delta = shard_apply_task(worker.payload(records))
    worker.absorb(delta, len(records))


def good_snapshot(worker, store, round_no):
    save_checkpoint(
        store, MANIFEST, {"round_no": round_no, "watermark": worker.seq_logged}
    )
    worker.checkpoint()
