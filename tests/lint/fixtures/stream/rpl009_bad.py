"""RPL009 positive fixture: a handler that swallows bad records.

Runtime twin: ``tests/sanitize/test_rule_runtime_pin.py`` drains the
same batch with and without one corrupt record — the swallowed record
silently shifts every later draw, nothing counts the drop, and only the
sanitizer's fingerprint diff names where the evidence disappeared.
"""


def decode_cost(record, rng):
    if record is None:
        raise ValueError("corrupt record")
    return rng.uniform(0.0, float(len(record)))


def drain(records, rng):
    total = 0.0
    for record in records:
        try:
            total += decode_cost(record, rng)
        except ValueError:
            continue
    return total
