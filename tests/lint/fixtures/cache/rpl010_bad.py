"""RPL010 positive fixture: publish-before-fsync and in-place updates.

Each function is a realistic wrong way to maintain a content-addressed
cache entry; the runnable twin (``tests/lint/test_rules.py`` +
``tests/workloads/test_scenario_cache.py``'s corruption test) shows why
the real stores do neither.
"""

import os
import tempfile


def bad_store(root, name, payload):
    """Renames the entry into place before its bytes are durable: a
    crash right after the replace surfaces a truncated entry."""
    path = os.path.join(root, name)
    fd, tmp = tempfile.mkstemp(dir=root, suffix=".tmp")
    with os.fdopen(fd, "wb") as fh:
        fh.write(payload)
    os.replace(tmp, path)
    dirfd = os.open(root, os.O_RDONLY)
    os.fsync(dirfd)
    os.close(dirfd)


def bad_update(path, extra):
    """Read-modify-write on a published entry: concurrent readers see a
    half-rewritten file."""
    with open(path, "r+b") as fh:
        blob = fh.read()
        fh.seek(0)
        fh.write(blob + extra)


def bad_append(path, record):
    """Appending mutates an entry after publication."""
    with open(path, "ab") as fh:
        fh.write(record)
