"""RPL010 negative fixture: the ``exec/cache.py`` write discipline.

Temp file in the same directory, fsync before the atomic rename, plain
read-only loads, and no read-modify-write anywhere.
"""

import os
import pickle
import tempfile


def good_store(root, name, entry):
    path = os.path.join(root, name)
    fd, tmp = tempfile.mkstemp(dir=root, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(entry, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        os.unlink(tmp)
        raise


def good_load(path):
    with open(path, "rb") as fh:
        return pickle.load(fh)
