"""The tree must satisfy its own determinism linter.

This is the gate CI runs (`python -m repro.lint src benchmarks`): the
simulator sources, the lint package itself, and the benches must all be
violation-free (inline suppressions count as documented exemptions).
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_tree_is_violation_free():
    violations, files_scanned = lint_paths([REPO_ROOT / "src"])
    assert files_scanned > 50  # the whole package, not a stray subdir
    assert violations == [], "\n" + "\n".join(v.render_text() for v in violations)


def test_benchmarks_are_violation_free():
    violations, files_scanned = lint_paths([REPO_ROOT / "benchmarks"])
    assert files_scanned >= 20
    assert violations == [], "\n" + "\n".join(v.render_text() for v in violations)


def test_examples_are_violation_free():
    violations, _ = lint_paths([REPO_ROOT / "examples"])
    assert violations == [], "\n" + "\n".join(v.render_text() for v in violations)
