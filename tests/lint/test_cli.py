"""CLI contract: exit codes, JSON/text output, --list-rules, baselines."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.cli import main
from repro.lint.rules import ALL_RULES

FIXTURES = Path(__file__).parent / "fixtures"
BASELINE = Path(__file__).parent / "baseline.json"

#: The stable machine-readable schema CI consumes; adding keys is fine,
#: renaming or removing any of these is a breaking change.
REPORT_KEYS = {"violations", "files_scanned", "clean"}
VIOLATION_KEYS = {"path", "line", "col", "rule", "message"}


def test_clean_path_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n")
    assert main([str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "1 file(s) scanned, clean" in out


def test_violations_exit_one_with_locations(capsys):
    assert main([str(FIXTURES / "rpl001_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "RPL001" in out
    assert "rpl001_bad.py:" in out


def test_each_fixture_file_fails_individually():
    """Acceptance criterion: every violation fixture exits non-zero alone."""
    for fixture in (
        "rpl001_bad.py",
        "core/rpl002_bad.py",
        "rpl003_bad.py",
        "rpl004_bad.py",
        "rpl005_bad.py",
        "rpl006_bad.py",
        "rpl007_bad.py",
        "stream/rpl008_bad.py",
        "stream/rpl009_bad.py",
    ):
        assert main([str(FIXTURES / fixture)]) == 1, fixture


def test_json_format(capsys):
    assert main(["--format", "json", str(FIXTURES / "rpl004_bad.py")]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["clean"] is False
    assert report["files_scanned"] == 1
    assert {v["rule"] for v in report["violations"]} == {"RPL004"}
    assert {"path", "line", "col", "rule", "message"} <= set(
        report["violations"][0]
    )


def test_json_clean_report(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n")
    assert main(["--format", "json", str(tmp_path)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report == {"violations": [], "files_scanned": 1, "clean": True}


def test_list_rules_covers_all(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.rule_id in out


def test_json_schema_is_stable(capsys):
    assert main(["--format", "json", str(FIXTURES / "rpl001_bad.py")]) == 1
    report = json.loads(capsys.readouterr().out)
    assert REPORT_KEYS <= set(report)
    for violation in report["violations"]:
        assert set(violation) == VIOLATION_KEYS
        assert isinstance(violation["line"], int)
        assert isinstance(violation["col"], int)
    # Deterministic ordering: (path, line, col, rule).
    keys = [
        (v["path"], v["line"], v["col"], v["rule"]) for v in report["violations"]
    ]
    assert keys == sorted(keys)


def test_no_paths_is_usage_error(capsys):
    assert main([]) == 2


def test_unreadable_path_is_exit_two(tmp_path, capsys):
    assert main([str(tmp_path / "missing")]) == 2
    assert "error" in capsys.readouterr().err


# -- baselines -----------------------------------------------------------------------

def test_update_baseline_then_scan_is_clean(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nrandom.random()\n")
    baseline = tmp_path / "baseline.json"
    assert main([str(bad), "--update-baseline", str(baseline)]) == 0
    assert main([str(bad), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "(1 baselined)" in out


def test_new_violation_beyond_baseline_fails(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nrandom.random()\n")
    baseline = tmp_path / "baseline.json"
    assert main([str(bad), "--update-baseline", str(baseline)]) == 0
    capsys.readouterr()
    bad.write_text("import random\nrandom.random()\nrandom.random()\n")
    assert main([str(bad), "--baseline", str(baseline)]) == 1
    out = capsys.readouterr().out
    # Only the overflow is reported, and it names the later finding.
    assert out.count("RPL001") == 1
    assert "bad.py:3" in out


def test_fixed_violation_never_breaks_the_baseline(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nrandom.random()\nrandom.random()\n")
    baseline = tmp_path / "baseline.json"
    assert main([str(bad), "--update-baseline", str(baseline)]) == 0
    bad.write_text("import random\nrandom.random()\n")
    assert main([str(bad), "--baseline", str(baseline)]) == 0


def test_baseline_json_report_carries_suppression_count(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nrandom.random()\n")
    baseline = tmp_path / "baseline.json"
    assert main([str(bad), "--update-baseline", str(baseline)]) == 0
    capsys.readouterr()
    assert main(["--format", "json", str(bad), "--baseline", str(baseline)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["clean"] is True
    assert report["suppressed"] == 1
    assert report["baseline"] == str(baseline)


def test_malformed_baseline_is_exit_two(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("x = 1\n")
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{\"version\": 99}\n")
    assert main([str(bad), "--baseline", str(baseline)]) == 2
    assert "baseline" in capsys.readouterr().err
    assert main([str(bad), "--baseline", str(tmp_path / "missing.json")]) == 2


def test_checked_in_tests_baseline_is_current():
    """`python -m repro.lint tests --baseline tests/lint/baseline.json`
    must pass from the repo root — i.e. the committed baseline matches
    the tree. Regenerate with --update-baseline after deliberate
    changes."""
    repo_root = Path(__file__).parent.parent.parent
    import os

    cwd = os.getcwd()
    os.chdir(repo_root)
    try:
        assert main(["tests", "--baseline", str(BASELINE)]) == 0
    finally:
        os.chdir(cwd)
