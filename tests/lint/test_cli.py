"""CLI contract: exit codes, JSON/text output, --list-rules."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.cli import main
from repro.lint.rules import ALL_RULES

FIXTURES = Path(__file__).parent / "fixtures"


def test_clean_path_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n")
    assert main([str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "1 file(s) scanned, clean" in out


def test_violations_exit_one_with_locations(capsys):
    assert main([str(FIXTURES / "rpl001_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "RPL001" in out
    assert "rpl001_bad.py:" in out


def test_each_fixture_file_fails_individually():
    """Acceptance criterion: every violation fixture exits non-zero alone."""
    for fixture in (
        "rpl001_bad.py",
        "core/rpl002_bad.py",
        "rpl003_bad.py",
        "rpl004_bad.py",
        "rpl005_bad.py",
    ):
        assert main([str(FIXTURES / fixture)]) == 1, fixture


def test_json_format(capsys):
    assert main(["--format", "json", str(FIXTURES / "rpl004_bad.py")]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["clean"] is False
    assert report["files_scanned"] == 1
    assert {v["rule"] for v in report["violations"]} == {"RPL004"}
    assert {"path", "line", "col", "rule", "message"} <= set(
        report["violations"][0]
    )


def test_json_clean_report(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n")
    assert main(["--format", "json", str(tmp_path)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report == {"violations": [], "files_scanned": 1, "clean": True}


def test_list_rules_covers_all(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.rule_id in out


def test_no_paths_is_usage_error(capsys):
    assert main([]) == 2


def test_unreadable_path_is_exit_two(tmp_path, capsys):
    assert main([str(tmp_path / "missing")]) == 2
    assert "error" in capsys.readouterr().err
