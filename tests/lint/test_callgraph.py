"""Unit coverage for the symbol-table/call-graph layer (callgraph.py)
and the cross-module behaviour of the flow rules: ``lint_paths`` builds
ONE :class:`~repro.lint.callgraph.Project` over every file in the
invocation, so RPL006/RPL007 see call edges and global reads that span
files.
"""

from __future__ import annotations

import ast

import pytest

from repro.lint import lint_paths
from repro.lint.callgraph import Project, module_name_for


def _project(**sources):
    triples = []
    for dotted, src in sorted(sources.items()):
        path = dotted.replace(".", "/") + ".py"
        triples.append((path, src, ast.parse(src)))
    return Project.build(triples)


# -- naming --------------------------------------------------------------------------

@pytest.mark.parametrize(
    "path, expected",
    [
        ("src/repro/stream/sink.py", "repro.stream.sink"),
        ("tests/lint/fixtures/rpl006_bad.py", "tests.lint.fixtures.rpl006_bad"),
        ("src/repro/__init__.py", "repro"),
        ("<string>", "string"),
    ],
)
def test_module_name_for(path, expected):
    assert module_name_for(path) == expected


# -- call resolution -----------------------------------------------------------------

def test_direct_call_resolves_within_module():
    project = _project(
        mod="def helper(rng):\n    return rng.random()\n"
        "def top(rng):\n    return helper(rng)\n"
    )
    top = project.function("mod.top")
    assert top is not None
    targets = {site.target for stmt in top.statements()
               for site in top.calls_in(stmt)}
    assert "mod.helper" in targets


def test_imported_call_resolves_across_modules():
    project = _project(
        a="def draw(rng, items):\n"
        "    total = 0.0\n"
        "    for item in items:\n"
        "        total += rng.random()\n"
        "    return total\n",
        b="from a import draw\n\ndef caller(rng):\n    return draw(rng, {1, 2})\n",
    )
    caller = project.function("b.caller")
    assert caller is not None
    assert [f.qualname for f in project.callees(caller)] == ["a.draw"]


def test_method_calls_resolve_through_attribute_types():
    project = _project(
        mod="class Wal:\n"
        "    def append(self, record):\n"
        "        return record\n"
        "class Worker:\n"
        "    def __init__(self):\n"
        "        self.wal = Wal()\n"
        "    def round(self, record):\n"
        "        return self.wal.append(record)\n"
    )
    worker_round = project.function("mod.Worker.round")
    assert worker_round is not None
    assert [f.qualname for f in project.callees(worker_round)] == [
        "mod.Wal.append"
    ]


def test_global_consumers_tracks_module_level_reads():
    project = _project(
        mod="STATE = object()\n"
        "def reader():\n    return STATE\n"
        "def other():\n    return 1\n"
    )
    consumers = project.global_consumers("mod", "STATE")
    assert [f.qualname for f in consumers] == ["mod.reader"]


# -- cross-module flow rules ---------------------------------------------------------

def test_rpl007_taint_crosses_files(tmp_path, monkeypatch):
    """A set literal passed *from another file* to a function that draws
    RNG values while iterating the parameter is flagged at the call
    site — single-file linting could never see this edge.

    Linted from inside the directory so the files' dotted module names
    (``drawer``, ``caller``) match the import spellings.
    """
    (tmp_path / "drawer.py").write_text(
        "def fold(rng, tags):\n"
        "    total = 0.0\n"
        "    for tag in tags:\n"
        "        total += rng.uniform(0.0, float(len(tag)))\n"
        "    return total\n"
    )
    (tmp_path / "caller.py").write_text(
        "from drawer import fold\n"
        "\n"
        "def run(rng):\n"
        "    return fold(rng, {'a', 'bb'})\n"
    )
    monkeypatch.chdir(tmp_path)
    violations, _ = lint_paths(["drawer.py", "caller.py"])
    rpl007 = [v for v in violations if v.rule == "RPL007"]
    assert any("caller.py" in v.path for v in rpl007)


def test_rpl006_shared_stream_consumers_in_one_file(tmp_path, monkeypatch):
    (tmp_path / "shared.py").write_text(
        "from repro.utils.rng import derive_rng\n"
        "RNG = derive_rng(1, 'fixture')\n"
        "def a():\n    return RNG.random()\n"
        "def b():\n    return RNG.random()\n"
    )
    monkeypatch.chdir(tmp_path)
    violations, _ = lint_paths(["shared.py"])
    assert [v.rule for v in violations] == ["RPL006"]
    assert "2 functions" in violations[0].message


def test_sorted_argument_is_not_tainted(tmp_path, monkeypatch):
    (tmp_path / "drawer.py").write_text(
        "def fold(rng, tags):\n"
        "    total = 0.0\n"
        "    for tag in tags:\n"
        "        total += rng.uniform(0.0, float(len(tag)))\n"
        "    return total\n"
    )
    (tmp_path / "caller.py").write_text(
        "from drawer import fold\n"
        "\n"
        "def run(rng):\n"
        "    return fold(rng, sorted({'a', 'bb'}))\n"
    )
    monkeypatch.chdir(tmp_path)
    violations, _ = lint_paths(["drawer.py", "caller.py"])
    assert violations == []
