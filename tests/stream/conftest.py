"""Shared fixtures for the streaming-sink suite."""

import pytest

from repro.stream import bundle_from_scenario
from repro.workloads import dynamic_rgg_scenario


@pytest.fixture(scope="session")
def bundle():
    """One small recorded stream shared by every sink test (231 records)."""
    scenario = dynamic_rgg_scenario(num_nodes=20).with_config(duration=60.0)
    return bundle_from_scenario(scenario, seed=7)


def estimate_fields(estimates):
    """Field-by-field view of an estimates map for exact comparison."""
    return {
        link: (est.loss, est.stderr, est.n_exact, est.n_censored)
        for link, est in estimates.items()
    }


def suff_fields(estimator):
    """Per-link sufficient statistics (order-independent merge invariant)."""
    return {
        tuple(entry["link"]): (
            entry["n_exact"],
            entry["sum_retx"],
            tuple(map(tuple, entry["censored"])),
        )
        for entry in estimator.state_dict()["links"]
    }
