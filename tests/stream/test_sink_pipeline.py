"""Sink pipeline behaviour: batch equivalence, backpressure, alerting."""

import pytest

from repro.core.estimator import PerLinkEstimator
from repro.stream import (
    AlertPolicy,
    BoundedPacketQueue,
    MemoryStore,
    PacketRecord,
    SinkConfig,
    StreamingSink,
    feed_estimator,
    shard_index,
)
from tests.stream.conftest import estimate_fields


def batch_reference(bundle):
    est = PerLinkEstimator(bundle.max_attempts)
    feed_estimator(est, bundle.records)
    return estimate_fields(est.estimates())


class TestBatchEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 3, 8])
    def test_zero_fault_stream_matches_batch(self, bundle, n_shards):
        config = SinkConfig(n_shards=n_shards, merge_every=4, alerts=None)
        sink = StreamingSink(bundle.max_attempts, MemoryStore(), config)
        final = list(sink.run(bundle.records))[-1]
        assert estimate_fields(final.estimates) == batch_reference(bundle)
        assert final.final
        assert sink.stats.consumed == len(bundle.records)

    def test_block_policy_loses_nothing_under_overload(self, bundle):
        config = SinkConfig(
            n_shards=3,
            merge_every=4,
            alerts=None,
            queue_capacity=8,
            arrival_burst=16,
            service_batch=4,
            queue_policy="block",
        )
        sink = StreamingSink(bundle.max_attempts, MemoryStore(), config)
        final = list(sink.run(bundle.records))[-1]
        assert sink.queue.stats.blocked > 0
        assert sink.queue.stats.shed == 0
        assert estimate_fields(final.estimates) == batch_reference(bundle)

    def test_shed_policy_drops_but_degrades_gracefully(self, bundle):
        config = SinkConfig(
            n_shards=3,
            merge_every=4,
            alerts=None,
            queue_capacity=8,
            arrival_burst=16,
            service_batch=4,
            queue_policy="shed",
        )
        sink = StreamingSink(bundle.max_attempts, MemoryStore(), config)
        final = list(sink.run(bundle.records))[-1]
        stats = sink.queue.stats
        assert stats.shed > 0
        assert stats.accepted + stats.shed == stats.offered
        assert stats.high_water <= config.queue_capacity
        # Surviving evidence still yields estimates (fewer samples).
        reference = batch_reference(bundle)
        for link, (_, _, n_exact, n_censored) in estimate_fields(
            final.estimates
        ).items():
            assert n_exact + n_censored <= (
                reference[link][2] + reference[link][3]
            )


class TestAlerts:
    def lossy_records(self):
        # Link (1, 0) at max retransmissions often -> high loss estimate.
        out = []
        for i in range(40):
            out.append(
                PacketRecord(
                    origin=1,
                    seqno=i,
                    created_at=float(i),
                    delivered=True,
                    hops=((1, 0, 3 if i % 2 else 1, True),),
                )
            )
        return out

    def config(self):
        return SinkConfig(
            n_shards=2,
            merge_every=4,
            alerts=AlertPolicy(loss_threshold=0.2, min_samples=10),
        )

    def test_alert_fires_once_per_link(self):
        sink = StreamingSink(4, MemoryStore(), self.config())
        snaps = list(sink.run(self.lossy_records()))
        alerts = [a for s in snaps for a in s.new_alerts]
        assert [a.link for a in alerts] == [(1, 0)]
        assert alerts[0].n_samples >= 10
        assert alerts[0].loss >= 0.2

    def test_stale_links_never_alert(self):
        records = self.lossy_records()
        sink = StreamingSink(4, MemoryStore(), self.config())
        n_shards = sink.config.n_shards
        # Pre-mark the link stale the way quarantine would.
        sink._stale.add((1, 0))
        snaps = list(sink.run(records))
        assert not [a for s in snaps for a in s.new_alerts]
        assert (1, 0) in snaps[-1].stale_links
        assert shard_index(1, 0, n_shards) >= 0  # routing still valid


class TestQueue:
    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedPacketQueue(0)
        with pytest.raises(ValueError):
            BoundedPacketQueue(4, policy="random")

    def test_snapshot_restore_roundtrip(self):
        q = BoundedPacketQueue(4)
        recs = [
            PacketRecord(0, i, float(i), True, ((0, 1, 1, True),))
            for i in range(3)
        ]
        for r in recs:
            assert q.offer(r)
        q2 = BoundedPacketQueue(4)
        q2.restore(q.snapshot())
        assert q2.pop_batch(10) == recs

    def test_restore_rejects_oversized_snapshot(self):
        q = BoundedPacketQueue(1)
        recs = [
            PacketRecord(0, i, float(i), True, ((0, 1, 1, True),))
            for i in range(2)
        ]
        with pytest.raises(ValueError):
            q.restore(recs)


class TestConfig:
    def test_roundtrip(self):
        config = SinkConfig(n_shards=5, queue_policy="shed", jobs=2)
        assert SinkConfig.from_dict(config.to_dict()) == config

    def test_roundtrip_without_alerts(self):
        config = SinkConfig(alerts=None)
        assert SinkConfig.from_dict(config.to_dict()) == config

    def test_validation(self):
        with pytest.raises(ValueError):
            SinkConfig(n_shards=0)
        with pytest.raises(ValueError):
            SinkConfig(merge_every=0)
        with pytest.raises(ValueError):
            AlertPolicy(loss_threshold=1.5)
