"""Durable-state failure modes (satellite 3): atomic writes, typed errors.

Every way a state file can go bad must surface as a typed error naming
the cause — never as unpickled garbage, a half-applied restore, or a
silently skipped record.
"""

import pytest

from repro.core.estimator import PerLinkEstimator
from repro.core.windowed import SlidingLinkEstimator
from repro.stream import (
    CheckpointError,
    DirectoryStore,
    MemoryStore,
    PacketRecord,
    WalError,
    WriteAheadLog,
    decode_checkpoint,
    encode_checkpoint,
    load_checkpoint,
    save_checkpoint,
)


def rec(seqno, created_at=1.0):
    return PacketRecord(
        origin=1,
        seqno=seqno,
        created_at=created_at,
        delivered=True,
        hops=((1, 0, 2, True),),
    )


class TestCheckpointFraming:
    def test_roundtrip(self):
        payload = {"shard": 3, "seq": 17, "estimator": {"links": []}}
        assert decode_checkpoint(encode_checkpoint(payload)) == payload

    def test_missing_is_typed(self):
        with pytest.raises(CheckpointError) as exc:
            load_checkpoint(MemoryStore(), "nope.ckpt")
        assert exc.value.cause == "missing"

    def test_truncated_payload_is_typed(self):
        blob = encode_checkpoint({"x": 1})
        with pytest.raises(CheckpointError) as exc:
            decode_checkpoint(blob[:-2])
        assert exc.value.cause == "truncated"

    def test_empty_file_is_truncated(self):
        with pytest.raises(CheckpointError) as exc:
            decode_checkpoint(b"")
        assert exc.value.cause == "truncated"

    def test_corrupt_payload_is_typed(self):
        blob = bytearray(encode_checkpoint({"x": 1}))
        blob[-1] ^= 0xFF  # flip a payload bit; header checksum now lies
        with pytest.raises(CheckpointError) as exc:
            decode_checkpoint(bytes(blob))
        assert exc.value.cause == "corrupt"

    def test_future_version_is_typed(self):
        blob = encode_checkpoint({"x": 1}).replace(
            b'"version": 1', b'"version": 99'
        )
        with pytest.raises(CheckpointError) as exc:
            decode_checkpoint(blob)
        assert exc.value.cause == "version"

    def test_garbage_header_is_typed(self):
        with pytest.raises(CheckpointError) as exc:
            decode_checkpoint(b"not json at all\n{}")
        assert exc.value.cause == "malformed"

    def test_never_unpickles(self):
        # A pickle-looking blob must be rejected at the framing layer.
        import pickle

        blob = pickle.dumps({"evil": True})
        with pytest.raises(CheckpointError):
            decode_checkpoint(blob)


class TestDirectoryStore:
    def test_atomic_write_and_read(self, tmp_path):
        store = DirectoryStore(tmp_path, fsync=False)
        save_checkpoint(store, "a.ckpt", {"v": 1})
        assert load_checkpoint(store, "a.ckpt") == {"v": 1}
        # No temp litter left behind after a successful replace.
        assert store.names() == ["a.ckpt"]

    def test_flat_names_only(self, tmp_path):
        store = DirectoryStore(tmp_path, fsync=False)
        with pytest.raises(ValueError):
            store.write_atomic("../escape", b"x")
        with pytest.raises(ValueError):
            store.write_atomic("sub/dir", b"x")

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        store = DirectoryStore(tmp_path, fsync=False)
        save_checkpoint(store, "a.ckpt", {"v": 1})
        save_checkpoint(store, "a.ckpt", {"v": 2})
        assert load_checkpoint(store, "a.ckpt") == {"v": 2}

    def test_truncated_file_on_disk_is_rejected(self, tmp_path):
        store = DirectoryStore(tmp_path, fsync=False)
        save_checkpoint(store, "a.ckpt", {"v": 1})
        blob = store.read("a.ckpt")
        (tmp_path / "a.ckpt").write_bytes(blob[: len(blob) - 3])
        with pytest.raises(CheckpointError) as exc:
            load_checkpoint(store, "a.ckpt")
        assert exc.value.cause == "truncated"


class TestWriteAheadLog:
    def test_append_replay_roundtrip(self):
        wal = WriteAheadLog(MemoryStore(), "s.wal")
        for i in range(1, 6):
            wal.append(i, rec(i))
        assert [seq for seq, _ in wal.replay(0)] == [1, 2, 3, 4, 5]
        assert [seq for seq, _ in wal.replay(3)] == [4, 5]
        assert wal.max_seq() == 5

    def test_torn_tail_is_dropped_and_counted(self):
        store = MemoryStore()
        wal = WriteAheadLog(store, "s.wal")
        wal.append(1, rec(1))
        wal.append(2, rec(2))
        # Simulate a crash mid-append: a half-written final line.
        store._blobs["s.wal"] = store._blobs["s.wal"] + b'{"seq": 3, "crc":'
        assert [seq for seq, _ in wal.replay(0)] == [1, 2]
        assert wal.torn_tail_dropped == 1

    def test_mid_file_corruption_is_fatal(self):
        store = MemoryStore()
        wal = WriteAheadLog(store, "s.wal")
        for i in range(1, 4):
            wal.append(i, rec(i))
        lines = store.read("s.wal").decode().splitlines()
        lines[1] = lines[1][:-5] + "XXXX}"  # damage a non-final line
        store._blobs["s.wal"] = ("\n".join(lines) + "\n").encode()
        with pytest.raises(WalError):
            list(wal.replay(0))

    def test_corrupted_crc_mid_file_is_fatal(self):
        store = MemoryStore()
        wal = WriteAheadLog(store, "s.wal")
        for i in range(1, 4):
            wal.append(i, rec(i))
        lines = store.read("s.wal").decode().splitlines()
        lines[0] = lines[0].replace('"seqno":1', '"seqno":9')
        store._blobs["s.wal"] = ("\n".join(lines) + "\n").encode()
        with pytest.raises(WalError):
            list(wal.replay(0))

    def test_non_increasing_sequence_is_fatal(self):
        store = MemoryStore()
        wal = WriteAheadLog(store, "s.wal")
        wal.append(2, rec(2))
        wal.append(2, rec(3))
        with pytest.raises(WalError):
            list(wal.replay(0))

    def test_truncate_through_drops_acked_prefix(self):
        store = MemoryStore()
        wal = WriteAheadLog(store, "s.wal")
        for i in range(1, 6):
            wal.append(i, rec(i))
        assert wal.truncate_through(3) == 2
        assert [seq for seq, _ in wal.replay(0)] == [4, 5]
        assert wal.truncate_through(5) == 0
        assert not store.exists("s.wal")

    def test_drop_after_cuts_the_tail(self):
        store = MemoryStore()
        wal = WriteAheadLog(store, "s.wal")
        for i in range(1, 6):
            wal.append(i, rec(i))
        assert wal.drop_after(3) == 2
        assert [seq for seq, _ in wal.replay(0)] == [1, 2, 3]
        assert wal.drop_after(0) == 3
        assert not store.exists("s.wal")


class TestStateRoundTrips:
    def test_estimator_rejects_unknown_schema(self):
        est = PerLinkEstimator(3)
        state = est.state_dict()
        state["schema"] = 42
        with pytest.raises(ValueError):
            PerLinkEstimator.from_state(state)

    def test_estimator_rejects_negative_counts(self):
        est = PerLinkEstimator(3)
        est.add_exact((0, 1), 1, 1.0)
        state = est.state_dict()
        state["links"][0]["n_exact"] = -1
        with pytest.raises(ValueError):
            PerLinkEstimator.from_state(state)

    def test_windowed_roundtrip(self):
        est = SlidingLinkEstimator(3, window=30.0)
        est.add_exact((0, 1), 1, 5.0)
        est.add_exact((0, 1), 0, 12.0)
        est.add_censored((1, 2), 1, 2, 20.0)
        clone = SlidingLinkEstimator.from_state(est.state_dict())
        assert clone.state_dict() == est.state_dict()
        assert clone.estimates(25.0).keys() == est.estimates(25.0).keys()

    def test_windowed_rejects_unknown_schema(self):
        est = SlidingLinkEstimator(3, window=30.0)
        state = est.state_dict()
        state["schema"] = 42
        with pytest.raises(ValueError):
            SlidingLinkEstimator.from_state(state)
