"""Kill-restore equivalence (satellite 2) and graceful degradation.

The acceptance bar: injected shard crashes followed by supervised
restore (checkpoint + WAL replay) must leave the final per-link
estimates **field-by-field identical** to an uninterrupted same-seed
run, and a shard that exhausts its retry budget must surface as per-link
staleness flags — never as silently wrong numbers.
"""

import pytest

from repro.net.faults import ShardFaultPlan
from repro.stream import (
    MemoryStore,
    RetryPolicy,
    SinkConfig,
    StreamingSink,
)
from repro.stream.supervisor import DOWN, HEALTHY, QUARANTINED, ShardSupervisor
from tests.stream.conftest import estimate_fields

CFG = SinkConfig(n_shards=3, merge_every=4, alerts=None)


def run_sink(bundle, config=CFG, faults=None, store=None):
    sink = StreamingSink(
        bundle.max_attempts, store or MemoryStore(), config, faults=faults
    )
    snapshots = list(sink.run(bundle.records))
    return sink, snapshots


class TestKillRestore:
    def test_crash_mid_window_restores_identical_estimates(self, bundle):
        _, clean = run_sink(bundle)
        faults = ShardFaultPlan(seed=3, crash_at=((3, 1), (5, 0)))
        sink, snaps = run_sink(bundle, faults=faults)
        assert sink.stats.crashes == 2
        assert sink.stats.restores == 2
        assert estimate_fields(snaps[-1].estimates) == estimate_fields(
            clean[-1].estimates
        )
        assert not snaps[-1].stale_links

    def test_stall_is_recovered_like_a_crash(self, bundle):
        _, clean = run_sink(bundle)
        faults = ShardFaultPlan(seed=3, stall_at=((2, 2),), stall_rounds=3)
        sink, snaps = run_sink(bundle, faults=faults)
        assert sink.stats.stalls == 1
        assert sink.stats.restores == 1
        assert estimate_fields(snaps[-1].estimates) == estimate_fields(
            clean[-1].estimates
        )

    def test_random_crash_storm_still_converges(self, bundle):
        _, clean = run_sink(bundle)
        faults = ShardFaultPlan(seed=5, crash_rate=0.1)
        sink, snaps = run_sink(bundle, faults=faults)
        assert sink.stats.crashes > 0
        assert not sink.supervisor.quarantined_shards()
        assert estimate_fields(snaps[-1].estimates) == estimate_fields(
            clean[-1].estimates
        )

    def test_no_fault_run_reports_no_supervision_activity(self, bundle):
        sink, snaps = run_sink(bundle)
        assert sink.stats.crashes == 0
        assert sink.stats.restores == 0
        assert snaps[-1].shard_states == (HEALTHY,) * 3


class TestQuarantine:
    def quarantined_run(self, bundle):
        config = SinkConfig(
            n_shards=3,
            merge_every=4,
            alerts=None,
            retry=RetryPolicy(max_restarts=1),
        )
        faults = ShardFaultPlan(
            seed=3, crash_at=tuple((r, 1) for r in range(1, 60))
        )
        return run_sink(bundle, config=config, faults=faults)

    def test_budget_exhaustion_quarantines_and_flags_links(self, bundle):
        sink, snaps = self.quarantined_run(bundle)
        assert sink.supervisor.quarantined_shards() == [1]
        final = snaps[-1]
        assert final.shard_states[1] == QUARANTINED
        assert final.stale_links  # degradation is visible, not silent
        assert sink.stats.dropped_quarantined > 0

    def test_quarantined_shard_still_contributes_durable_state(self, bundle):
        sink, snaps = self.quarantined_run(bundle)
        # The frozen contribution keeps every link that had durable
        # evidence before the quarantine; a link whose only evidence was
        # dropped afterwards may be absent — but then it MUST be flagged.
        _, clean = run_sink(bundle)
        final = snaps[-1]
        assert set(final.estimates) <= set(clean[-1].estimates)
        missing = set(clean[-1].estimates) - set(final.estimates)
        assert missing <= set(final.stale_links)

    def test_healthy_links_unaffected_by_dead_shard(self, bundle):
        sink, snaps = self.quarantined_run(bundle)
        _, clean = run_sink(bundle)
        stale = set(snaps[-1].stale_links)
        degraded = estimate_fields(snaps[-1].estimates)
        reference = estimate_fields(clean[-1].estimates)
        for link, fields in reference.items():
            if link not in stale:
                assert degraded[link] == fields


class TestProcessResume:
    def test_resume_from_manifest_converges_identically(self, bundle):
        _, clean = run_sink(bundle)
        store = MemoryStore()
        first = StreamingSink(bundle.max_attempts, store, CFG)
        gen = first.run(bundle.records)
        next(gen)  # one snapshot, then the process "dies"
        resumed = StreamingSink.resume(store)
        assert resumed.consumed > 0
        snaps = list(resumed.run(bundle.records))
        assert estimate_fields(snaps[-1].estimates) == estimate_fields(
            clean[-1].estimates
        )

    def test_resume_with_faults_sees_the_same_schedule(self, bundle):
        faults = ShardFaultPlan(seed=3, crash_rate=0.08)
        _, uninterrupted = run_sink(bundle, faults=faults)
        store = MemoryStore()
        first = StreamingSink(bundle.max_attempts, store, CFG, faults=faults)
        gen = first.run(bundle.records)
        next(gen)
        resumed = StreamingSink.resume(store, faults=faults)
        snaps = list(resumed.run(bundle.records))
        assert estimate_fields(snaps[-1].estimates) == estimate_fields(
            uninterrupted[-1].estimates
        )

    def test_resume_requires_the_original_stream(self, bundle):
        store = MemoryStore()
        first = StreamingSink(bundle.max_attempts, store, CFG)
        gen = first.run(bundle.records)
        next(gen)
        resumed = StreamingSink.resume(store)
        with pytest.raises(ValueError, match="consumed offset"):
            list(resumed.run(bundle.records[:1]))

    def test_repeated_restore_is_idempotent(self, bundle):
        faults = ShardFaultPlan(seed=3, crash_at=((3, 1),))
        sink, _ = run_sink(bundle, faults=faults)
        shard = sink.shards[1]
        before = shard.estimator.state_dict()
        shard.restore()
        shard.restore()
        assert shard.estimator.state_dict() == before


class TestEffectProtocol:
    """Runtime-sanitizer wiring: the durability-effect stream of every
    sink run — clean, crashing, quarantining, resuming — satisfies the
    ordering protocol RPL008 checks statically (WAL append dominates
    apply; manifest dominates checkpoint truncation). Restores
    legitimately change the effect *log*; they must never bend the
    protocol."""

    def _protocol(self, fn):
        from repro.sanitize import sanitize_run, verify_effect_protocol

        with sanitize_run("crash-recovery") as san:
            fn()
        fingerprint = san.fingerprint()
        assert fingerprint.effects, "sink run must record durability effects"
        return verify_effect_protocol(fingerprint)

    def test_clean_run_protocol_holds(self, bundle):
        assert self._protocol(lambda: run_sink(bundle)) == []

    def test_crash_restore_protocol_holds(self, bundle):
        faults = ShardFaultPlan(seed=3, crash_at=((3, 1), (5, 0)))
        assert self._protocol(lambda: run_sink(bundle, faults=faults)) == []

    def test_quarantine_protocol_holds(self, bundle):
        config = SinkConfig(
            n_shards=3,
            merge_every=4,
            alerts=None,
            retry=RetryPolicy(max_restarts=1),
        )
        faults = ShardFaultPlan(
            seed=3, crash_at=tuple((r, 1) for r in range(1, 60))
        )
        assert (
            self._protocol(
                lambda: run_sink(bundle, config=config, faults=faults)
            )
            == []
        )

    def test_process_resume_protocol_holds(self, bundle):
        def resumed_run():
            store = MemoryStore()
            first = StreamingSink(bundle.max_attempts, store, CFG)
            gen = first.run(bundle.records)
            next(gen)  # one snapshot, then the process "dies"
            resumed = StreamingSink.resume(store)
            list(resumed.run(bundle.records))

        assert self._protocol(resumed_run) == []


class TestSupervisor:
    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(max_restarts=10, backoff_base=1, backoff_cap=8)
        assert [policy.backoff_rounds(n) for n in range(1, 7)] == [
            1, 2, 4, 8, 8, 8,
        ]

    def test_lifecycle_healthy_down_restored(self):
        sup = ShardSupervisor(2, RetryPolicy(max_restarts=2, backoff_base=2))
        assert sup.state(0) == HEALTHY
        assert sup.record_failure(0, round_no=5) == DOWN
        assert not sup.due_for_restore(0, 6)
        assert sup.due_for_restore(0, 7)
        sup.mark_restored(0)
        assert sup.state(0) == HEALTHY

    def test_budget_exhaustion_is_terminal(self):
        sup = ShardSupervisor(1, RetryPolicy(max_restarts=1, backoff_base=1))
        assert sup.record_failure(0, 1) == DOWN
        sup.mark_restored(0)
        assert sup.record_failure(0, 2) == QUARANTINED
        assert sup.state(0) == QUARANTINED
        with pytest.raises(ValueError):
            sup.mark_restored(0)
        # Further failures stay quarantined, never resurrect.
        assert sup.record_failure(0, 3) == QUARANTINED

    def test_state_roundtrip(self):
        sup = ShardSupervisor(3, RetryPolicy())
        sup.record_failure(1, 4)
        clone = ShardSupervisor(3, RetryPolicy())
        clone.restore_state(sup.state_dict())
        assert clone.state_dict() == sup.state_dict()
        assert clone.state(1) == DOWN
