"""Property tests for ``PerLinkEstimator.merge`` (satellite 1).

The streaming sink's correctness rests on merge being a proper monoid
over sufficient statistics: any partition of the record stream into
shards, merged in any order, must yield the same per-link estimates as
one estimator fed everything. These properties are exercised over
hypothesis-generated packet streams, including a round trip through the
checkpoint encoding (merge-of-checkpointed-shards ≡ single estimator).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import PerLinkEstimator
from repro.stream import (
    PacketRecord,
    decode_checkpoint,
    encode_checkpoint,
    feed_estimator,
    shard_index,
)
from tests.stream.conftest import estimate_fields, suff_fields

MAX_ATTEMPTS = 4

hop = st.tuples(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=1, max_value=MAX_ATTEMPTS),
    st.booleans(),
)

record = st.builds(
    PacketRecord,
    origin=st.integers(min_value=0, max_value=5),
    seqno=st.integers(min_value=0, max_value=500),
    created_at=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    delivered=st.booleans(),
    hops=st.lists(hop, max_size=4).map(tuple),
)

records = st.lists(record, max_size=40)


def fed(recs):
    est = PerLinkEstimator(MAX_ATTEMPTS)
    feed_estimator(est, recs)
    return est


def merged(*ests):
    out = PerLinkEstimator(MAX_ATTEMPTS)
    for est in ests:
        out.merge(est)
    return out


@settings(max_examples=60, deadline=None)
@given(records, records)
def test_merge_is_commutative(recs_a, recs_b):
    ab = merged(fed(recs_a), fed(recs_b))
    ba = merged(fed(recs_b), fed(recs_a))
    assert suff_fields(ab) == suff_fields(ba)
    assert estimate_fields(ab.estimates()) == estimate_fields(ba.estimates())


@settings(max_examples=60, deadline=None)
@given(records, records, records)
def test_merge_is_associative(recs_a, recs_b, recs_c):
    left = merged(merged(fed(recs_a), fed(recs_b)), fed(recs_c))
    right = merged(fed(recs_a), merged(fed(recs_b), fed(recs_c)))
    # Same operand order end to end, so even the diagnostic per-link
    # times sequences agree: full state equality, not just estimates.
    assert left.state_dict() == right.state_dict()


@settings(max_examples=60, deadline=None)
@given(records, st.integers(min_value=1, max_value=5))
def test_shard_split_merge_equals_single(recs, n_shards):
    single = fed(recs)
    shards = [
        fed([r for r in recs if shard_index(r.origin, r.seqno, n_shards) == s])
        for s in range(n_shards)
    ]
    combined = merged(*shards)
    assert suff_fields(combined) == suff_fields(single)
    assert estimate_fields(combined.estimates()) == estimate_fields(
        single.estimates()
    )


@settings(max_examples=40, deadline=None)
@given(records, st.integers(min_value=1, max_value=4))
def test_merge_of_checkpointed_shards_equals_single(recs, n_shards):
    """Shard → checkpoint-encode → decode → restore → merge ≡ single."""
    single = fed(recs)
    restored = []
    for s in range(n_shards):
        est = fed(
            [r for r in recs if shard_index(r.origin, r.seqno, n_shards) == s]
        )
        blob = encode_checkpoint({"estimator": est.state_dict()})
        payload = decode_checkpoint(blob)
        restored.append(PerLinkEstimator.from_state(payload["estimator"]))
    combined = merged(*restored)
    assert suff_fields(combined) == suff_fields(single)
    assert estimate_fields(combined.estimates()) == estimate_fields(
        single.estimates()
    )


@settings(max_examples=40, deadline=None)
@given(records)
def test_state_roundtrip_is_lossless(recs):
    est = fed(recs)
    clone = PerLinkEstimator.from_state(est.state_dict())
    assert clone.state_dict() == est.state_dict()
    assert estimate_fields(clone.estimates()) == estimate_fields(est.estimates())


def test_merge_rejects_mismatched_configuration():
    import pytest

    a = PerLinkEstimator(3)
    b = PerLinkEstimator(4)
    with pytest.raises(ValueError):
        a.merge(b)
