"""``jobs=N`` ≡ ``jobs=1`` for the sharded streaming sink.

The shard apply stage is the only part of the sink that crosses a
process boundary, and it ships stateless delta tasks whose results merge
positionally in sorted shard order — so worker count must never change a
single field of the final estimates, with or without injected faults.

``REPRO_TEST_JOBS`` overrides the parallel width (CI runs 2).
"""

import os

import pytest

from repro.net.faults import ShardFaultPlan
from repro.stream import MemoryStore, SinkConfig, StreamingSink
from tests.stream.conftest import estimate_fields

JOBS = int(os.environ.get("REPRO_TEST_JOBS", "2"))


def final_estimates(bundle, jobs, faults=None):
    config = SinkConfig(n_shards=4, merge_every=4, alerts=None, jobs=jobs)
    sink = StreamingSink(
        bundle.max_attempts, MemoryStore(), config, faults=faults
    )
    return estimate_fields(list(sink.run(bundle.records))[-1].estimates)


def test_parallel_apply_matches_serial(bundle):
    assert final_estimates(bundle, JOBS) == final_estimates(bundle, 1)


def test_parallel_apply_matches_serial_under_faults(bundle):
    faults = ShardFaultPlan(seed=9, crash_rate=0.05)
    assert final_estimates(bundle, JOBS, faults) == final_estimates(
        bundle, 1, faults
    )


@pytest.mark.parametrize("n_shards", [2, 5])
def test_shard_count_never_changes_estimates(bundle, n_shards):
    config = SinkConfig(n_shards=n_shards, merge_every=4, alerts=None)
    sink = StreamingSink(bundle.max_attempts, MemoryStore(), config)
    final = estimate_fields(list(sink.run(bundle.records))[-1].estimates)
    assert final == final_estimates(bundle, 1)
