"""Runtime pins for RPL006–RPL009: each static fixture's violation is
also caught by the sanitizer when the fixture code actually runs.

This is the contract that keeps the static rules honest — a rule flags a
shape, this suite demonstrates the shape misbehaving observably (a
divergent fingerprint or a broken effect protocol), and the *ok* twin
demonstrates the blessed spelling behaving identically under the same
perturbation.
"""

from __future__ import annotations

import importlib.util
import itertools
from pathlib import Path

import numpy as np

from repro.sanitize import (
    diff_fingerprints,
    sanitize_run,
    verify_effect_protocol,
)
from repro.stream.records import PacketRecord
from repro.stream.shard import ShardWorker
from repro.stream.storage import DirectoryStore
from repro.utils.rng import derive_rng

FIXTURES = Path(__file__).parent.parent / "lint" / "fixtures"
_counter = itertools.count()


def load_fixture(rel):
    """Import a lint fixture fresh (module-level state re-executes)."""
    path = FIXTURES / rel
    name = f"rpl_fixture_{rel.replace('/', '_')[:-3]}_{next(_counter)}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ------------------------------------------------------------------ RPL006

def test_rpl006_aliased_stream_couples_consumers():
    """Swapping consumer call order reassigns which values each consumer
    receives — exactly the parity break RPL006 predicts."""
    with sanitize_run("scalar-first") as a:
        mod = load_fixture("rpl006_bad.py")
        scalar_first = mod.scalar_losses(4)
        mod.buffered_losses(4)
    with sanitize_run("buffered-first") as b:
        mod = load_fixture("rpl006_bad.py")
        mod.buffered_losses(4)
        scalar_second = mod.scalar_losses(4)
    # The consumer's observed values depend on who drew before it.
    assert scalar_first != list(scalar_second)
    # Global (call-interleaving) mode names the coupled stream.
    d = diff_fingerprints(a.fingerprint(), b.fingerprint(), mode="global")
    assert d and d[0].stream == "fixture/shared"
    assert "rpl006_bad.py" in (d[0].site_a or "")


def test_rpl006_ok_per_consumer_substreams_commute():
    with sanitize_run("scalar-first") as a:
        mod = load_fixture("rpl006_ok.py")
        scalar_first = mod.scalar_losses(1234, 4)
        mod.buffered_losses(1234, 4)
    with sanitize_run("buffered-first") as b:
        mod = load_fixture("rpl006_ok.py")
        mod.buffered_losses(1234, 4)
        scalar_second = mod.scalar_losses(1234, 4)
    assert scalar_first == list(scalar_second)
    # Per-stream values are order-independent once streams are private.
    assert diff_fingerprints(a.fingerprint(), b.fingerprint(),
                             mode="stream") == []


# ------------------------------------------------------------------ RPL007

TAGS = ["n1", "n22", "n333", "n4444"]


def test_rpl007_unordered_iteration_diverges():
    mod = load_fixture("rpl007_bad.py")
    with sanitize_run("fwd") as a:
        mod.fold_weights(TAGS, derive_rng(77, "fold"))
    with sanitize_run("rev") as b:
        mod.fold_weights(list(reversed(TAGS)), derive_rng(77, "fold"))
    d = diff_fingerprints(a.fingerprint(), b.fingerprint(), mode="stream")
    assert len(d) == 1
    div = d[0]
    assert div.kind == "draw" and div.stream == "fold" and div.index == 0
    assert "rpl007_bad.py" in div.site_a and "rpl007_bad.py" in div.site_b


def test_rpl007_ok_sorted_iteration_is_order_independent():
    mod = load_fixture("rpl007_ok.py")
    with sanitize_run("fwd") as a:
        total_a = mod.fold_weights(TAGS, derive_rng(77, "fold"))
    with sanitize_run("rev") as b:
        total_b = mod.fold_weights(list(reversed(TAGS)), derive_rng(77, "fold"))
    assert total_a == total_b
    assert diff_fingerprints(a.fingerprint(), b.fingerprint(),
                             mode="global") == []


# ------------------------------------------------------------------ RPL008

def _records(n):
    return [
        PacketRecord(0, i, float(i), True, ((0, 1, 1, True),)) for i in range(n)
    ]


def test_rpl008_bad_order_breaks_effect_protocol(tmp_path):
    mod = load_fixture("stream/rpl008_bad.py")
    with sanitize_run("bad") as san:
        store = DirectoryStore(tmp_path / "bad", fsync=False)
        worker = ShardWorker(0, 3, store)
        mod.bad_round(worker, _records(5))
        mod.bad_snapshot(worker, store, round_no=1)
    problems = verify_effect_protocol(san.fingerprint())
    assert len(problems) == 2
    assert any("apply" in p and "durable" in p for p in problems)
    assert any("manifest" in p for p in problems)


def test_rpl008_ok_order_verifies_clean(tmp_path):
    mod = load_fixture("stream/rpl008_ok.py")
    with sanitize_run("good") as san:
        store = DirectoryStore(tmp_path / "good", fsync=False)
        worker = ShardWorker(0, 3, store)
        mod.good_round(worker, _records(5))
        mod.good_snapshot(worker, store, round_no=1)
    assert verify_effect_protocol(san.fingerprint()) == []


# ------------------------------------------------------------------ RPL009

RECORDS = ["a", "bb", "ccc", "dddd", "eeeee"]


def test_rpl009_swallowed_record_shifts_draws_unaccounted():
    mod = load_fixture("stream/rpl009_bad.py")
    corrupted = list(RECORDS)
    corrupted[2] = None
    with sanitize_run("clean") as a:
        mod.drain(RECORDS, derive_rng(5, "decode"))
    with sanitize_run("corrupt") as b:
        mod.drain(corrupted, derive_rng(5, "decode"))
    d = diff_fingerprints(a.fingerprint(), b.fingerprint(), mode="stream")
    assert d, "swallowed record must shift the draw sequence"
    div = d[0]
    assert div.stream == "decode" and div.index == 2
    assert "rpl009_bad.py" in (div.site_a or "")
    # The bad fixture keeps no account of the drop: only the sanitizer
    # names where the evidence disappeared.


def test_rpl009_ok_counts_the_drop():
    mod = load_fixture("stream/rpl009_ok.py")
    corrupted = list(RECORDS)
    corrupted[2] = None
    stats = {}
    with sanitize_run("corrupt") as b:
        mod.drain(corrupted, derive_rng(5, "decode"), stats)
    assert stats == {"dropped": 1}
    # Accounting balances: draws + drops == records.
    assert b.fingerprint().total_draws() + stats["dropped"] == len(RECORDS)


def test_rpl008_real_sink_order_is_clean_end_to_end(tmp_path):
    """The production sink's effect stream satisfies the protocol."""
    from repro.stream.records import feed_estimator  # noqa: F401 (import check)
    mod = load_fixture("stream/rpl008_ok.py")
    with sanitize_run("two-rounds") as san:
        store = DirectoryStore(tmp_path / "s", fsync=False)
        worker = ShardWorker(0, 3, store)
        for round_no in range(3):
            mod.good_round(worker, _records(4))
            mod.good_snapshot(worker, store, round_no=round_no)
    assert verify_effect_protocol(san.fingerprint()) == []
    fp = san.fingerprint()
    kinds = [e.kind for e in fp.effects]
    assert kinds.count("wal-append") == 12
    assert kinds.count("manifest-write") == 3
    assert kinds.count("checkpoint-write") == 3
