"""Sanitizer core: wrap-at-creation, zero-overhead-off, exact recording."""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.net.sim import Simulator
from repro.sanitize import Fingerprint, hooks, sanitize_run, value_bits
from repro.sanitize.tracer import TracedGenerator
from repro.utils.rng import RngRegistry, derive_rng


@pytest.fixture
def sanitizer_off():
    """Force the off state even when the whole pytest run was launched
    under REPRO_SANITIZE=1 (the env-activated sanitizer is global)."""
    previous = hooks.deactivate()
    try:
        yield
    finally:
        if previous is not None:
            hooks.activate(previous)


def test_off_by_default_returns_raw_generator(sanitizer_off):
    gen = derive_rng(7, "link", 1, 2)
    assert type(gen) is np.random.Generator


def test_wrap_at_creation_inside_context(sanitizer_off):
    with sanitize_run("t"):
        gen = derive_rng(7, "link", 1, 2)
        assert isinstance(gen, TracedGenerator)
        assert gen.stream_name == "link/1/2"
    # Context exited: new streams are raw again.
    assert type(derive_rng(7, "link", 1, 2)) is np.random.Generator


def test_registry_caches_wrapped_proxy():
    with sanitize_run("t"):
        reg = RngRegistry(3)
        g1 = reg.get("traffic", 0)
        g2 = reg.get("traffic", 0)
        assert g1 is g2
        assert isinstance(g1, TracedGenerator)


def test_tracing_never_perturbs_the_stream():
    raw = derive_rng(11, "s").random(20)
    with sanitize_run("t"):
        traced = derive_rng(11, "s")
        got = np.array([traced.random() for _ in range(10)] + list(traced.random(10)))
    assert np.array_equal(raw, got)


def test_draws_recorded_with_stream_index_and_site():
    with sanitize_run("t") as san:
        gen = derive_rng(5, "arq", 3)
        gen.random()
        gen.normal(size=4)
    fp = san.fingerprint()
    records = fp.stream_records("arq/3")
    assert [r.count for r in records] == [1, 4]
    assert [r.start for r in records] == [0, 1]
    assert records[0].method == "random"
    assert records[1].method == "normal"
    for rec in records:
        assert "test_tracer.py" in rec.site
        assert "test_draws_recorded_with_stream_index_and_site" in rec.site


def test_value_bits_are_exact_float_patterns():
    assert value_bits(0.0) != value_bits(-0.0)
    assert value_bits(1.5) == (np.float64(1.5).view(np.uint64).item(),)
    assert value_bits(np.array([1.5, -0.0])) == (
        value_bits(1.5)[0],
        value_bits(-0.0)[0],
    )
    assert value_bits(7) == (7,)
    assert value_bits(-1) == (0xFFFFFFFFFFFFFFFF,)
    assert value_bits(np.arange(3, dtype=np.int64)) == (0, 1, 2)
    assert value_bits(None) == ()


def test_simulator_records_pop_order():
    with sanitize_run("t") as san:
        sim = Simulator()
        order = []
        sim.at(2.0, order.append, "b")
        sim.at(1.0, order.append, "a")
        sim.run_until(5.0)
    fp = san.fingerprint()
    assert order == ["a", "b"]
    assert [t for t, _ in fp.pops] == [1.0, 2.0]
    assert fp.pops[0][1] != fp.pops[1][1]  # distinct tie-break seqs


def test_simulator_off_records_nothing(sanitizer_off):
    sim = Simulator()
    sim.at(1.0, lambda: None)
    sim.run_until(2.0)
    assert sim._san is None


def test_fingerprint_json_roundtrip(tmp_path):
    with sanitize_run("roundtrip") as san:
        gen = derive_rng(5, "s")
        gen.random(3)
        san.record_pop(1.25, 4)
        san.record_effect("wal-append", "shard-000.wal", 1)
    fp = san.fingerprint()
    path = tmp_path / "fp.json"
    fp.save(path)
    back = Fingerprint.load(path)
    assert back.label == "roundtrip"
    assert back.draws == fp.draws
    assert back.pops == fp.pops
    assert back.effects == fp.effects


def test_nested_contexts_restore_previous():
    with sanitize_run("outer") as outer:
        derive_rng(1, "a").random()
        with sanitize_run("inner") as inner:
            derive_rng(1, "b").random()
        derive_rng(1, "c").random()
    assert set(outer.fingerprint().stream_names()) == {"a", "c"}
    assert inner.fingerprint().stream_names() == ["b"]


def test_env_activation_in_subprocess():
    code = (
        "import repro.sanitize.hooks as h; "
        "from repro.utils.rng import derive_rng; "
        "from repro.sanitize.tracer import TracedGenerator; "
        "assert h.ACTIVE is not None; "
        "assert isinstance(derive_rng(1, 's'), TracedGenerator); "
        "print('ok')"
    )
    src = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
    env = dict(os.environ, REPRO_SANITIZE="1")
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.abspath(src), env.get("PYTHONPATH", "")])
    )
    out = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip() == "ok"
