"""Differ contract: name the first divergent draw; verify the effect protocol."""

from __future__ import annotations

import pytest

from repro.sanitize import (
    Fingerprint,
    diff_fingerprints,
    sanitize_run,
    verify_effect_protocol,
)
from repro.sanitize.fingerprint import DrawRecord, EffectRecord
from repro.utils.rng import derive_rng


def _trace(fn, label):
    with sanitize_run(label) as san:
        fn()
    return san.fingerprint()


def test_identical_runs_identical_fingerprints():
    def run():
        gen = derive_rng(3, "a")
        gen.random(5)
        gen.normal()

    fa, fb = _trace(run, "a"), _trace(run, "b")
    assert diff_fingerprints(fa, fb, mode="stream") == []
    assert diff_fingerprints(fa, fb, mode="global") == []


def test_first_divergent_draw_named_with_site_and_index():
    def base():
        gen = derive_rng(3, "a")
        for _ in range(4):
            gen.random()

    def shifted():
        gen = derive_rng(3, "a")
        gen.random()
        gen.random(2)  # an unexpected batched draw mid-stream
        for _ in range(3):
            gen.random()

    d = diff_fingerprints(_trace(base, "A"), _trace(shifted, "B"), mode="stream")
    assert len(d) == 1
    div = d[0]
    # Values agree (same stream prefix) but B drew 2 extra at the end.
    assert div.kind == "draw-count" and div.stream == "a" and div.index == 4
    assert div.site_b is not None and "test_differ.py" in div.site_b
    assert div.site_a is None


def test_divergent_value_mid_stream():
    def base():
        derive_rng(3, "a").random(4)

    fa = _trace(base, "A")
    fb = Fingerprint(label="B")
    # Build B as A with one value flipped, to pin index/site reporting.
    rec = fa.stream_records("a")[0]
    flipped = list(rec.values)
    flipped[2] ^= 1
    fb.draws.append(
        DrawRecord(rec.stream, rec.method, "elsewhere.py:1 in f", 0, tuple(flipped))
    )
    d = diff_fingerprints(fa, fb, mode="stream")
    assert len(d) == 1
    assert d[0].kind == "draw" and d[0].index == 2
    assert "test_differ.py" in (d[0].site_a or "")
    assert d[0].site_b == "elsewhere.py:1 in f"


def test_block_tail_allowance_cross_engine_shape():
    def scalar():
        gen = derive_rng(9, "arq")
        for _ in range(10):
            gen.random()

    def block():
        derive_rng(9, "arq").random(256)  # pre-drawn block, tail unconsumed

    assert diff_fingerprints(_trace(scalar, "A"), _trace(block, "B"),
                             mode="stream") == []


def test_extra_call_beyond_prefix_is_flagged():
    def scalar():
        gen = derive_rng(9, "arq")
        for _ in range(10):
            gen.random()

    def block_plus_one():
        gen = derive_rng(9, "arq")
        gen.random(256)
        gen.random()  # extra call entirely past the compared prefix

    d = diff_fingerprints(
        _trace(scalar, "A"), _trace(block_plus_one, "B"), mode="stream"
    )
    assert len(d) == 1 and d[0].kind == "draw-count"


def test_global_mode_rejects_batching_reshape():
    def scalar():
        gen = derive_rng(9, "arq")
        gen.random()
        gen.random()

    def batched():
        derive_rng(9, "arq").random(2)

    assert diff_fingerprints(_trace(scalar, "A"), _trace(batched, "B"),
                             mode="stream") == []
    d = diff_fingerprints(_trace(scalar, "A"), _trace(batched, "B"), mode="global")
    assert d and d[0].kind == "call" and d[0].index == 0


def test_missing_stream_reported():
    def one():
        derive_rng(1, "only").random()

    def none():
        pass

    d = diff_fingerprints(_trace(one, "A"), _trace(none, "B"), mode="stream")
    assert len(d) == 1 and d[0].stream == "only" and d[0].kind == "draw-count"


def test_pop_divergence_and_stream_mode_absence():
    fa = Fingerprint(label="A", pops=[(1.0, 1), (2.0, 2)])
    fb = Fingerprint(label="B", pops=[(1.0, 1), (2.0, 3)])
    d = diff_fingerprints(fa, fb, mode="stream")
    assert len(d) == 1 and d[0].kind == "pop" and d[0].index == 1
    # An engine with no event queue at all is tolerated in stream mode...
    fc = Fingerprint(label="C", pops=[])
    assert diff_fingerprints(fa, fc, mode="stream") == []
    # ...but not in global (same-engine) mode.
    d = diff_fingerprints(fa, fc, mode="global")
    assert d and d[0].kind == "pop-count"


def test_effect_divergence():
    fa = Fingerprint(label="A", effects=[EffectRecord("wal-append", "w", 1)])
    fb = Fingerprint(label="B", effects=[EffectRecord("apply", "w", 1)])
    d = diff_fingerprints(fa, fb, mode="stream")
    assert len(d) == 1 and d[0].kind == "effect"


def test_unknown_mode_raises():
    with pytest.raises(ValueError):
        diff_fingerprints(Fingerprint(label="A"), Fingerprint(label="B"),
                          mode="fuzzy")


# ---------------------------------------------------------------- protocol

def _fp(effects):
    return Fingerprint(label="p", effects=[EffectRecord(*e) for e in effects])


def test_protocol_clean_sequence():
    fp = _fp([
        ("wal-append", "w", 1),
        ("wal-append", "w", 2),
        ("apply", "w", 2),
        ("manifest-write", "sink.manifest", 0),
        ("checkpoint-write", "w", 2),
    ])
    assert verify_effect_protocol(fp) == []


def test_protocol_apply_before_append():
    fp = _fp([("apply", "w", 2), ("wal-append", "w", 1), ("wal-append", "w", 2)])
    problems = verify_effect_protocol(fp)
    assert len(problems) == 1 and "apply" in problems[0]


def test_protocol_checkpoint_without_manifest():
    fp = _fp([("wal-append", "w", 1), ("apply", "w", 1), ("checkpoint-write", "w", 1)])
    problems = verify_effect_protocol(fp)
    assert len(problems) == 1 and "no prior manifest" in problems[0]


def test_protocol_checkpoint_with_stale_manifest():
    fp = _fp([
        ("manifest-write", "sink.manifest", 0),
        ("wal-append", "w", 1),
        ("apply", "w", 1),
        ("checkpoint-write", "w", 1),  # append postdates the manifest
    ])
    problems = verify_effect_protocol(fp)
    assert len(problems) == 1 and "postdates" in problems[0]


def test_protocol_applies_only_to_matching_wal():
    fp = _fp([
        ("wal-append", "w1", 1),
        ("apply", "w2", 1),  # different WAL: w2 has no appends
    ])
    problems = verify_effect_protocol(fp)
    assert len(problems) == 1 and "`w2`" in problems[0]


def test_version_gate(tmp_path):
    path = tmp_path / "fp.json"
    fp = Fingerprint(label="x")
    fp.save(path)
    text = path.read_text().replace('"version": 1', '"version": 99')
    path.write_text(text)
    with pytest.raises(ValueError):
        Fingerprint.load(path)
