"""Tests for the link-class context-model extension."""

import pytest

from repro.core.config import DophyConfig
from repro.core.dophy import DophySystem
from repro.core.model import ModelManager
from repro.core.symbols import SymbolSet
from repro.net.link import BernoulliLink, Channel
from repro.net.routing import RoutingConfig
from repro.net.simulation import CollectionSimulation, SimulationConfig
from repro.net.topology import line_topology
from repro.utils.rng import RngRegistry


def make_manager(num_classes=2, **kw):
    ss = SymbolSet(max_count=30, aggregation_threshold=3)
    defaults = dict(update_period=10.0, num_nodes_for_dissemination=20)
    defaults.update(kw)
    return ModelManager(ss, num_classes=num_classes, **defaults)


class TestMultiClassModelManager:
    def test_initial_epoch_single_behaviour(self):
        mm = make_manager(num_classes=3)
        # Epoch 0: every class identical, every link class 0.
        assert mm.class_of(0, (5, 2)) == 0
        assert mm.table(0, 0) == mm.table(0, 2)
        assert mm.table_for_link(0, (5, 2)) == mm.table(0)

    def test_classification_separates_good_and_bad_links(self):
        mm = make_manager(num_classes=2)
        good, bad = (1, 0), (3, 2)
        mm.observe_hops([(good, 0)] * 300 + [(good, 1)] * 10, time=5.0)
        mm.observe_hops([(bad, 3)] * 200 + [(bad, 2)] * 100, time=5.0)
        assert mm.maybe_update(10.0)
        assert mm.class_of(1, good) != mm.class_of(1, bad)
        good_table = mm.table_for_link(1, good)
        bad_table = mm.table_for_link(1, bad)
        # Good class: mass on symbol 0; bad class: mass on 2/3.
        assert good_table.probability(0) > 0.9
        assert bad_table.probability(0) < 0.1
        assert bad_table.probability(3) > 0.5

    def test_single_class_ignores_links(self):
        mm = make_manager(num_classes=1)
        mm.observe_hops([((1, 0), 0)] * 50 + [((2, 1), 3)] * 50, time=1.0)
        assert mm.maybe_update(10.0)
        assert mm.table_for_link(1, (1, 0)) == mm.table_for_link(1, (2, 1))

    def test_unknown_links_fall_back_to_class_zero(self):
        mm = make_manager(num_classes=2)
        mm.observe_hops([((1, 0), 0)] * 50 + [((2, 1), 3)] * 50, time=1.0)
        mm.maybe_update(10.0)
        assert mm.class_of(1, (9, 9)) == 0

    def test_multi_class_dissemination_costs_more(self):
        single = make_manager(num_classes=1)
        multi = make_manager(num_classes=4)
        for mm in (single, multi):
            mm.observe_hops(
                [((i, 0), i % 4) for i in range(1, 9) for _ in range(40)], time=1.0
            )
            mm.maybe_update(10.0)
        assert multi.total_dissemination_bits > 2 * single.total_dissemination_bits

    def test_validation(self):
        with pytest.raises(ValueError):
            make_manager(num_classes=0)
        mm = make_manager(num_classes=2)
        with pytest.raises(ValueError):
            mm.table(0, class_id=5)

    def test_class_id_bits(self):
        assert make_manager(num_classes=2).class_id_bits == 1
        assert make_manager(num_classes=4).class_id_bits == 2
        assert make_manager(num_classes=5).class_id_bits == 3


class TestEndToEndWithClasses:
    def run_dophy(self, link_classes):
        # Extreme heterogeneity: near-perfect links next to terrible ones.
        topo = line_topology(5)
        models = {}
        for u, v in topo.undirected_edges():
            loss = 0.02 if u % 2 == 0 else 0.5
            models[(u, v)] = BernoulliLink(loss)
            models[(v, u)] = BernoulliLink(loss)
        channel = Channel(topo, models, RngRegistry(7))
        dophy = DophySystem(
            DophyConfig(
                link_classes=link_classes,
                model_update_period=30.0,
                path_encoding="assumed",
            )
        )
        sim = CollectionSimulation(
            topo,
            seed=7,
            config=SimulationConfig(
                duration=400.0, traffic_period=1.5,
                routing=RoutingConfig(etx_noise_std=0.0),
            ),
            channel=channel,
            observers=[dophy],
        )
        result = sim.run()
        return dophy.report(), result

    def test_roundtrip_with_classes(self):
        report, result = self.run_dophy(link_classes=3)
        assert report.decode_failures == 0
        assert report.packets_decoded == result.ground_truth.packets_delivered

    def test_same_estimates_regardless_of_classes(self):
        rep1, _ = self.run_dophy(link_classes=1)
        rep3, _ = self.run_dophy(link_classes=3)
        for link in rep1.estimates:
            assert rep1.estimates[link].loss == pytest.approx(
                rep3.estimates[link].loss, abs=1e-12
            )

    def test_classes_shrink_annotations_on_heterogeneous_links(self):
        rep1, _ = self.run_dophy(link_classes=1)
        rep3, _ = self.run_dophy(link_classes=3)
        assert rep3.mean_annotation_bits < rep1.mean_annotation_bits
        # But dissemination costs more.
        assert rep3.dissemination_bits > rep1.dissemination_bits
