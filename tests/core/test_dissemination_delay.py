"""Tests for model-dissemination latency (epoch activation delay)."""

import pytest

from repro.core.config import DophyConfig
from repro.core.dophy import DophySystem
from repro.core.model import ModelManager
from repro.core.symbols import SymbolSet
from repro.net.link import uniform_loss_assigner
from repro.net.routing import RoutingConfig
from repro.net.simulation import CollectionSimulation, SimulationConfig
from repro.net.topology import line_topology


def make_manager(delay):
    ss = SymbolSet(max_count=30, aggregation_threshold=3)
    return ModelManager(
        ss, update_period=10.0, activation_delay=delay,
        num_nodes_for_dissemination=10,
    )


class TestActivationDelay:
    def test_epoch_activates_after_delay(self):
        mm = make_manager(delay=5.0)
        mm.observe_symbols([0] * 50, time=8.0)
        assert mm.maybe_update(10.0)
        assert mm.current_epoch == 1  # sink view: newest
        assert mm.current_epoch_for(10.0) == 0  # encoders: still propagating
        assert mm.current_epoch_for(14.9) == 0
        assert mm.current_epoch_for(15.0) == 1

    def test_zero_delay_immediate(self):
        mm = make_manager(delay=0.0)
        mm.observe_symbols([0] * 50, time=8.0)
        mm.maybe_update(10.0)
        assert mm.current_epoch_for(10.0) == 1

    def test_stacked_updates_activate_in_order(self):
        mm = make_manager(delay=3.0)
        for i in range(3):
            mm.observe_symbols([0] * 50, time=10.0 * i + 5.0)
            mm.maybe_update(10.0 * (i + 1))
        # Updates at t=10/20/30 with delay 3 activate at t=13/23/33.
        assert mm.current_epoch == 3
        assert mm.current_epoch_for(12.0) == 0
        assert mm.current_epoch_for(14.0) == 1
        assert mm.current_epoch_for(24.0) == 2
        assert mm.current_epoch_for(100.0) == 3

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            make_manager(delay=-1.0)

    def test_evicted_epoch_falls_back_to_oldest_retained(self):
        ss = SymbolSet(max_count=30, aggregation_threshold=3)
        mm = ModelManager(
            ss, update_period=10.0, activation_delay=1e9, epoch_history=2,
        )
        for i in range(4):
            mm.observe_symbols([0] * 20, time=10.0 * i + 5.0)
            mm.maybe_update(10.0 * (i + 1))
        # Nothing has activated (huge delay) and epoch 0 was evicted:
        # encoders fall back to the oldest epoch the sink still retains.
        epoch = mm.current_epoch_for(50.0)
        assert epoch in mm._tables


class TestSystemWithDelay:
    def run(self, delay):
        dophy = DophySystem(
            DophyConfig(model_update_period=40.0, dissemination_delay=delay)
        )
        sim = CollectionSimulation(
            line_topology(4),
            seed=81,
            config=SimulationConfig(
                duration=300.0, traffic_period=2.0,
                routing=RoutingConfig(etx_noise_std=0.0),
            ),
            link_assigner=uniform_loss_assigner(0.1, 0.3),
            observers=[dophy],
        )
        result = sim.run()
        return dophy.report(), result

    def test_decoding_unaffected_by_delay(self):
        report, result = self.run(delay=15.0)
        assert report.decode_failures == 0
        assert report.packets_decoded == result.ground_truth.packets_delivered
        assert report.model_updates >= 5

    def test_same_estimates_with_and_without_delay(self):
        with_delay, _ = self.run(delay=15.0)
        without, _ = self.run(delay=0.0)
        assert set(with_delay.estimates) == set(without.estimates)
        for link in with_delay.estimates:
            assert with_delay.estimates[link].loss == pytest.approx(
                without.estimates[link].loss, abs=1e-12
            )
