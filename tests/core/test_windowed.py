"""Tests for the sliding-window (drift-tracking) estimator."""

import numpy as np
import pytest

from repro.core.config import DophyConfig
from repro.core.decoder import DecodedAnnotation, DecodedHop
from repro.core.dophy import DophySystem
from repro.core.estimator import PerLinkEstimator
from repro.core.windowed import SlidingLinkEstimator
from repro.net.link import DriftingLink, BernoulliLink, Channel
from repro.net.routing import RoutingConfig
from repro.net.simulation import CollectionSimulation, SimulationConfig
from repro.net.topology import line_topology
from repro.utils.rng import RngRegistry

LINK = (1, 0)


def feed_geometric(est, loss, t0, t1, n, rng, max_attempts=31):
    """Feed n exact observations of a loss-p link spread over [t0, t1]."""
    for time in np.linspace(t0, t1, n):
        a = 1
        while rng.random() < loss and a < max_attempts:
            a += 1
        est.add_exact(LINK, a - 1, float(time))


class TestWindowing:
    def test_estimate_uses_only_window(self):
        est = SlidingLinkEstimator(max_attempts=31, window=50.0)
        rng = np.random.default_rng(1)
        feed_geometric(est, 0.6, 0.0, 50.0, 800, rng)   # old: very lossy
        feed_geometric(est, 0.1, 100.0, 150.0, 800, rng)  # recent: good
        recent = est.estimate(LINK, now=150.0)
        assert abs(recent.loss - 0.1) < 0.05
        old = est.estimate(LINK, now=50.0)
        assert abs(old.loss - 0.6) < 0.05

    def test_empty_window_returns_none(self):
        est = SlidingLinkEstimator(max_attempts=31, window=10.0)
        est.add_exact(LINK, 0, time=0.0)
        assert est.estimate(LINK, now=100.0) is None
        assert est.estimate((9, 9), now=0.0) is None

    def test_n_samples_window(self):
        est = SlidingLinkEstimator(max_attempts=31, window=10.0)
        for t in [0.0, 5.0, 9.0, 15.0, 20.0]:
            est.add_exact(LINK, 0, time=t)
        # Window is (now - window, now] = (10, 20] -> samples at 15 and 20.
        assert est.n_samples(LINK, now=20.0) == 2
        assert est.n_samples(LINK, now=9.0) == 3  # (-1, 9] -> 0, 5, 9

    def test_out_of_order_insert(self):
        est = SlidingLinkEstimator(max_attempts=31, window=100.0)
        est.add_exact(LINK, 0, time=10.0)
        est.add_exact(LINK, 5, time=5.0)  # arrives late
        est.add_exact(LINK, 0, time=20.0)
        assert est.n_samples(LINK, now=20.0) == 3
        # Window ending before t=10 only sees the late-arrival sample.
        only_old = est.estimate(LINK, now=6.0)
        assert only_old.n_samples == 1

    def test_matches_batch_estimator_over_full_window(self):
        sliding = SlidingLinkEstimator(max_attempts=31, window=1000.0)
        batch = PerLinkEstimator(max_attempts=31)
        rng = np.random.default_rng(2)
        for t in range(500):
            a = 1
            while rng.random() < 0.3 and a < 31:
                a += 1
            sliding.add_exact(LINK, a - 1, float(t))
            batch.add_exact(LINK, a - 1, float(t))
        s = sliding.estimate(LINK, now=499.0)
        b = batch.estimate(LINK)
        assert s.loss == pytest.approx(b.loss, abs=1e-9)

    def test_censored_observations(self):
        est = SlidingLinkEstimator(max_attempts=31, window=100.0)
        rng = np.random.default_rng(3)
        for t in np.linspace(0, 100, 1500):
            a = 1
            while rng.random() < 0.5 and a < 31:
                a += 1
            c = a - 1
            if c >= 2:
                est.add_censored(LINK, 2, 30, float(t))
            else:
                est.add_exact(LINK, c, float(t))
        result = est.estimate(LINK, now=100.0)
        assert abs(result.loss - 0.5) < 0.06

    def test_prune(self):
        est = SlidingLinkEstimator(max_attempts=31, window=10.0)
        for t in range(20):
            est.add_exact(LINK, 0, time=float(t))
        removed = est.prune(before=10.0)
        assert removed == 10
        assert est.n_samples(LINK, now=19.0) == 10
        # Pruning everything drops the link.
        est.prune(before=100.0)
        assert est.links() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingLinkEstimator(max_attempts=0, window=1.0)
        with pytest.raises(ValueError):
            SlidingLinkEstimator(max_attempts=5, window=0.0)
        est = SlidingLinkEstimator(max_attempts=5, window=1.0)
        with pytest.raises(ValueError):
            est.add_exact(LINK, 5, 0.0)

    def test_add_censored_validates_bounds_at_insertion(self):
        """Invalid censored bounds raise immediately rather than being
        stored and corrupting a later window's likelihood."""
        est = SlidingLinkEstimator(max_attempts=8, window=10.0)
        with pytest.raises(ValueError):
            est.add_censored(LINK, 3, 2, time=0.0)  # lo > hi
        with pytest.raises(ValueError):
            est.add_censored(LINK, 0, 8, time=0.0)  # hi beyond cap
        with pytest.raises(ValueError):
            est.add_censored(LINK, -1, 2, time=0.0)  # negative lo
        assert est.estimate(LINK, now=0.0) is None  # nothing slipped in

    def test_add_decoded_clamps_out_of_range_hops(self):
        """One corrupted hop must not drop the annotation's other hops."""
        est = SlidingLinkEstimator(max_attempts=4, window=10.0)
        decoded = DecodedAnnotation(
            epoch=0,
            path=[2, 1, 0],
            hops=[
                DecodedHop((2, 1), None, (2, 9)),  # hi beyond the cap
                DecodedHop((1, 0), 0, (0, 0)),
            ],
            symbols=[],
            wire_bits=0,
        )
        est.add_decoded(decoded, time=1.0)
        assert est.n_samples((2, 1), now=1.0) == 1
        assert est.n_samples((1, 0), now=1.0) == 1


class TestDriftTracking:
    def test_tracks_sinusoidal_drift(self):
        """The windowed estimate follows the true drifting loss; the batch
        estimate cannot."""
        est = SlidingLinkEstimator(max_attempts=31, window=60.0)
        batch = PerLinkEstimator(max_attempts=31)
        link_model = DriftingLink(0.3, amplitude=0.25, period=400.0)
        rng = np.random.default_rng(4)
        for t in np.linspace(0, 400, 8000):
            a = 1
            while rng.random() < link_model.true_loss(float(t)) and a < 31:
                a += 1
            est.add_exact(LINK, a - 1, float(t))
            batch.add_exact(LINK, a - 1, 0.0)
        batch_loss = batch.estimate(LINK).loss
        window_errs, batch_errs = [], []
        for t in [100.0, 200.0, 300.0, 400.0]:
            truth = link_model.true_loss(t - 30.0)  # window midpoint
            window_errs.append(abs(est.estimate(LINK, now=t).loss - truth))
            batch_errs.append(abs(batch_loss - truth))
        assert np.mean(window_errs) < 0.05
        assert np.mean(window_errs) < 0.5 * np.mean(batch_errs)

    def test_timeline_shape(self):
        est = SlidingLinkEstimator(max_attempts=31, window=20.0)
        for t in range(100):
            est.add_exact(LINK, 0, float(t))
        series = est.timeline(LINK, [10.0, 50.0, 99.0, 500.0])
        assert len(series) == 4
        assert series[0][1] is not None
        assert series[3][1] is None  # window long past the data


class TestDophyIntegration:
    def test_decode_listener_feeds_sliding_estimator(self):
        topo = line_topology(4)
        dophy = DophySystem(DophyConfig())
        sliding = SlidingLinkEstimator(max_attempts=31, window=60.0)
        sim = CollectionSimulation(
            topo,
            seed=5,
            config=SimulationConfig(
                duration=120.0, traffic_period=2.0,
                routing=RoutingConfig(etx_noise_std=0.0),
            ),
            observers=[dophy],
        )
        dophy.add_decode_listener(sliding.add_decoded)
        result = sim.run()
        assert sliding.links()  # received evidence
        est = sliding.estimates(now=120.0)
        assert (1, 0) in est
        # Windowed estimate agrees with the batch one on a stationary run.
        batch = dophy.report().estimates[(1, 0)]
        assert abs(est[(1, 0)].loss - batch.loss) < 0.05

    def test_listener_must_be_callable(self):
        with pytest.raises(TypeError):
            DophySystem().add_decode_listener("nope")
