"""Tests for the Bayesian per-link estimator."""

import numpy as np
import pytest

from repro.core.bayes import BayesianLinkEstimator
from repro.core.decoder import DecodedAnnotation, DecodedHop
from repro.core.estimator import PerLinkEstimator

LINK = (2, 1)


def feed_geometric(est, loss, n, rng, max_attempts=31):
    for _ in range(n):
        a = 1
        while rng.random() < loss and a < max_attempts:
            a += 1
        est.add_exact(LINK, a - 1)


class TestPosterior:
    def test_converges_to_truth(self):
        rng = np.random.default_rng(1)
        est = BayesianLinkEstimator(max_attempts=31)
        feed_geometric(est, 0.35, 3000, rng)
        result = est.estimate(LINK)
        assert abs(result.posterior_mean - 0.35) < 0.03
        lo, hi = result.credible_interval
        assert lo < 0.35 < hi

    def test_no_evidence_returns_none(self):
        est = BayesianLinkEstimator(max_attempts=31)
        assert est.estimate(LINK) is None
        assert est.estimates() == {}

    def test_prior_dominates_small_samples(self):
        """One zero-retx sample barely moves the Beta(1,4) prior."""
        est = BayesianLinkEstimator(max_attempts=31, prior_alpha=1.0, prior_beta=4.0)
        est.add_exact(LINK, 0)
        result = est.estimate(LINK)
        # Prior mean 0.2; one clean sample shifts it only slightly down.
        assert 0.1 < result.posterior_mean < 0.2

    def test_credible_interval_narrows_with_data(self):
        rng = np.random.default_rng(2)
        def width(n):
            est = BayesianLinkEstimator(max_attempts=31)
            feed_geometric(est, 0.3, n, rng)
            lo, hi = est.estimate(LINK).credible_interval
            return hi - lo

        assert width(2000) < width(20)

    def test_grid_matches_conjugate_when_unconstrained(self):
        """With deep caps and no censoring, grid ~= closed-form Beta."""
        rng = np.random.default_rng(3)
        grid_est = BayesianLinkEstimator(max_attempts=500, truncation_correction=True)
        conj_est = BayesianLinkEstimator(max_attempts=500, truncation_correction=False)
        for est in (grid_est, conj_est):
            r = np.random.default_rng(3)
            feed_geometric(est, 0.4, 800, r, max_attempts=500)
        g = grid_est.estimate(LINK)
        c = conj_est.estimate(LINK)
        assert g.posterior_mean == pytest.approx(c.posterior_mean, abs=0.005)

    def test_censored_evidence_informs(self):
        rng = np.random.default_rng(4)
        est = BayesianLinkEstimator(max_attempts=31)
        K = 2
        for _ in range(2000):
            a = 1
            while rng.random() < 0.5 and a < 31:
                a += 1
            c = a - 1
            if c >= K:
                est.add_censored(LINK, K, 30)
            else:
                est.add_exact(LINK, c)
        result = est.estimate(LINK)
        assert abs(result.posterior_mean - 0.5) < 0.05

    def test_truncation_correction_matters_on_tight_cap(self):
        rng = np.random.default_rng(5)
        loss, cap = 0.7, 4
        corrected = BayesianLinkEstimator(max_attempts=cap)
        naive = BayesianLinkEstimator(max_attempts=cap, truncation_correction=False)
        for _ in range(4000):
            a = 1
            while rng.random() < loss:
                a += 1
            if a > cap:
                continue  # hop failed; annotation never delivered
            corrected.add_exact(LINK, a - 1)
            naive.add_exact(LINK, a - 1)
        err_corr = abs(corrected.estimate(LINK).posterior_mean - loss)
        err_naive = abs(naive.estimate(LINK).posterior_mean - loss)
        assert err_corr < err_naive
        assert err_corr < 0.06

    def test_validation(self):
        with pytest.raises(ValueError):
            BayesianLinkEstimator(max_attempts=0)
        with pytest.raises(ValueError):
            BayesianLinkEstimator(max_attempts=5, prior_alpha=0.0)
        est = BayesianLinkEstimator(max_attempts=5)
        with pytest.raises(ValueError):
            est.add_exact(LINK, 5)
        with pytest.raises(ValueError):
            est.add_censored(LINK, 3, 2)

    def test_add_decoded_clamps_out_of_range_hops(self):
        """One corrupted hop must not drop the annotation's other hops."""
        est = BayesianLinkEstimator(max_attempts=4)
        decoded = DecodedAnnotation(
            epoch=0,
            path=[2, 1, 0],
            hops=[
                DecodedHop((2, 1), None, (2, 9)),  # hi beyond the cap
                DecodedHop((1, 0), 0, (0, 0)),
            ],
            symbols=[],
            wire_bits=0,
        )
        est.add_decoded(decoded)
        assert est.n_samples((2, 1)) == 1
        assert est.n_samples((1, 0)) == 1


class TestShrinkage:
    def test_beats_mle_on_sparse_links(self):
        """Network-wide MAE: Bayesian shrinkage wins when most links have
        few samples."""
        rng = np.random.default_rng(6)
        true_losses = {(i, 0): float(rng.uniform(0.1, 0.3)) for i in range(1, 41)}
        bayes = BayesianLinkEstimator(
            max_attempts=31, prior_alpha=2.0, prior_beta=8.0
        )
        mle = PerLinkEstimator(max_attempts=31)
        for link, loss in true_losses.items():
            for _ in range(4):  # sparse!
                a = 1
                while rng.random() < loss and a < 31:
                    a += 1
                bayes.add_exact(link, a - 1)
                mle.add_exact(link, a - 1, 0.0)
        b_err = np.mean(
            [abs(e.posterior_mean - true_losses[l]) for l, e in bayes.estimates().items()]
        )
        m_err = np.mean(
            [abs(e.loss - true_losses[l]) for l, e in mle.estimates().items()]
        )
        assert b_err < m_err

    def test_empirical_bayes_prior_fit(self):
        rng = np.random.default_rng(7)
        est = BayesianLinkEstimator(max_attempts=31)
        # Many well-observed links around loss 0.4.
        for i in range(1, 15):
            link = (i, 0)
            for _ in range(200):
                a = 1
                while rng.random() < 0.4 and a < 31:
                    a += 1
                est.add_exact(link, a - 1)
        alpha, beta = est.fit_prior_empirical_bayes(min_samples=50)
        assert abs(alpha / (alpha + beta) - 0.4) < 0.05
        # New sparse link shrinks toward 0.4 rather than the old 0.2 prior.
        est.add_exact((99, 0), 0)
        sparse = est.estimate((99, 0))
        assert sparse.posterior_mean > 0.25

    def test_empirical_bayes_insufficient_links_keeps_prior(self):
        est = BayesianLinkEstimator(max_attempts=31, prior_alpha=1.0, prior_beta=4.0)
        est.add_exact(LINK, 1)
        assert est.fit_prior_empirical_bayes() == (1.0, 4.0)
