"""Lossy model dissemination: per-node epochs, repair, graceful decay.

Covers the broadcast-round machinery (per-node epoch tracking, repair
under backoff, per-round overhead charging), the stuck-node regression
(a node pinned beyond the sink's epoch-history window degrades into
counted ``unknown_epoch`` failures, never a crash), duplicate-delivery
tolerance at the sink, and prefix salvage gating.
"""

import pytest

from repro.core.config import DophyConfig
from repro.core.decoder import AnnotationDecodeError, DecodedHop
from repro.core.dophy import DophySystem
from repro.core.model import ModelManager
from repro.core.symbols import SymbolSet
from repro.net.packet import Packet
from repro.net.simulation import CollectionSimulation, SimulationConfig
from repro.net.topology import line_topology
from repro.workloads import line_scenario


def run_line(config, *, duration=400.0, num_nodes=8, seed=71, faults=None):
    scenario = line_scenario(num_nodes, duration=duration, traffic_period=4.0)
    system = DophySystem(config, faults=faults)
    sim = scenario.make_simulation(seed, [system])
    result = sim.run()
    return system, result


class TestConfig:
    def test_lossy_flag(self):
        assert not DophyConfig().lossy_dissemination
        assert DophyConfig(dissemination_loss=0.2).lossy_dissemination
        assert DophyConfig(dissemination_blocked_nodes=(3,)).lossy_dissemination

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            DophyConfig(dissemination_loss=1.5)
        with pytest.raises(ValueError):
            DophyConfig(dissemination_retries=-1)
        with pytest.raises(ValueError):
            DophyConfig(dissemination_backoff=0.0)
        with pytest.raises(ValueError):
            DophyConfig(dissemination_backoff=5.0, dissemination_backoff_cap=1.0)

    def test_attach_preserves_dissemination_knobs(self):
        # The attach-time alphabet re-derivation (MAC cap != max_count)
        # must not silently drop the dissemination fields.
        topo = line_topology(4)
        system = DophySystem(
            DophyConfig(dissemination_loss=0.25, dissemination_retries=7)
        )
        sim = CollectionSimulation(
            topo, seed=3, config=SimulationConfig(duration=20.0), observers=[system]
        )
        sim.run()
        assert system.config.max_count == sim.config.mac.max_retries
        assert system.config.dissemination_loss == 0.25
        assert system.config.dissemination_retries == 7


class TestModelManagerPerNodeEpochs:
    def make(self):
        ss = SymbolSet(10, 3)
        mm = ModelManager(ss, update_period=10.0, num_nodes_for_dissemination=4)
        mm.enable_per_node_epochs([1, 2, 3])
        return mm

    def test_delivery_is_monotonic(self):
        mm = self.make()
        assert mm.deliver_epoch(1, 1)
        assert not mm.deliver_epoch(1, 1)  # duplicate repair copy
        assert not mm.deliver_epoch(1, 0)  # out-of-order
        assert mm.epoch_of_node(1) == 1
        assert mm.nodes_behind(1) == [2, 3]

    def test_unknown_node_rejected(self):
        mm = self.make()
        with pytest.raises(KeyError):
            mm.deliver_epoch(99, 1)

    def test_charge_broadcast_accumulates(self):
        mm = self.make()
        payload = mm.epoch_payload_bits(0)
        assert payload > 0
        charged = mm.charge_broadcast(0, 3)
        assert charged == payload * 3
        assert mm.total_dissemination_bits == charged

    def test_encoder_archive_survives_eviction(self):
        ss = SymbolSet(10, 3)
        mm = ModelManager(
            ss, update_period=10.0, epoch_history=2, num_nodes_for_dissemination=4
        )
        mm.enable_per_node_epochs([1])
        for t in (10.0, 20.0, 30.0):
            mm.observe_symbols([0, 1, 2], t)
            assert mm.maybe_update(t)
        # Epoch 0 and 1 are out of the sink's 2-epoch decode window...
        with pytest.raises(KeyError):
            mm.table(0)
        # ...but the stuck encoder still sees its own copy.
        assert mm.encoder_symbol_set_for(0) is not None
        assert mm.encoder_table_for_link(0, (1, 0)) is not None


class TestRepairConvergence:
    def test_stragglers_converge_and_rounds_are_billed(self):
        config = DophyConfig(
            model_update_period=60.0,
            dissemination_loss=0.3,
            dissemination_retries=5,
            dissemination_backoff=1.0,
        )
        system, result = run_line(config)
        report = system.report()
        assert report.model_updates > 0
        assert report.dissemination_rounds == report.model_updates
        assert report.repair_rounds > 0
        assert report.dissemination_bits > 0
        assert report.stale_nodes == 0  # repair caught everyone up
        # Losing broadcasts never loses data-plane evidence.
        assert report.packets_decoded + report.decode_failures == len(
            result.delivered_packets
        )

    def test_zero_knobs_identical_to_idealized(self):
        # dissemination_loss=0 with no blocked nodes must take the exact
        # historical code path: same estimates, same overhead, bit for bit.
        base_sys, _ = run_line(DophyConfig(model_update_period=60.0))
        knob_sys, _ = run_line(
            DophyConfig(
                model_update_period=60.0,
                dissemination_loss=0.0,
                dissemination_retries=9,
                dissemination_backoff=1.0,
            )
        )
        a, b = base_sys.report(), knob_sys.report()
        assert not base_sys.models.per_node_epochs
        assert not knob_sys.models.per_node_epochs
        assert a.annotation_bits == b.annotation_bits
        assert a.dissemination_bits == b.dissemination_bits
        assert {l: e.loss for l, e in a.estimates.items()} == {
            l: e.loss for l, e in b.estimates.items()
        }


class TestStuckNodeRegression:
    def test_node_stuck_beyond_window_degrades_gracefully(self):
        """A node whose control path is dead stays on epoch 0 forever.

        Once epoch 0 leaves the sink's history window its packets become
        ``unknown_epoch`` failures — counted, not crashed — while every
        other link keeps producing accurate estimates. Duration is kept
        short enough (< modulus epochs) that epoch 0 cannot alias with a
        retained epoch through the modular header field.
        """
        stuck = 7
        config = DophyConfig(
            model_update_period=60.0,
            epoch_history=4,
            dissemination_blocked_nodes=(stuck,),
        )
        system, result = run_line(config)  # 400s -> ~6 epochs < modulus 8
        report = system.report()
        assert report.model_updates >= 5
        assert report.stale_nodes == 1
        # The stuck node's late packets are attributed, and nothing else fails.
        assert report.decode_failure_causes["unknown_epoch"] > 0
        assert report.decode_failures == report.attributed_failures
        assert report.packets_decoded + report.decode_failures == len(
            result.delivered_packets
        )
        # Links untouched by the stuck origin stay accurate.
        truth = result.ground_truth.true_loss_map(kind="empirical")
        for link, est in report.estimates.items():
            if est.n_samples >= 30 and link != (stuck, stuck - 1):
                assert abs(est.loss - truth[link]) < 0.05

    def test_moderately_stale_node_still_decodes(self):
        # One lost round followed by successful repair keeps the node
        # within the history window: zero decode failures.
        config = DophyConfig(
            model_update_period=60.0,
            dissemination_loss=0.3,
            dissemination_retries=4,
            dissemination_backoff=1.0,
        )
        system, _ = run_line(config, seed=5)
        report = system.report()
        assert report.decode_failure_causes["unknown_epoch"] == 0


class TestSinkTolerance:
    def attached_system(self):
        topo = line_topology(4)
        system = DophySystem(DophyConfig(model_update_period=None))
        sim = CollectionSimulation(
            topo, seed=11, config=SimulationConfig(duration=5.0), observers=[system]
        )
        sim.run()
        return system

    def test_duplicate_delivery_is_counted_not_crashed(self):
        system = self.attached_system()
        packet = Packet(origin=3, seqno=999, created_at=0.0)
        # Never created through the observer: the sink has no annotation.
        system.on_packet_delivered(packet, 1.0)
        assert system.report().duplicate_deliveries == 1
        # A hop event for an unknown packet is equally tolerated.
        system.on_hop_delivered(packet, 3, 2, 1, 1.0)
        assert system.report().orphan_hop_events == 1

    def test_salvage_requires_consistent_path(self):
        system = self.attached_system()
        packet = Packet(origin=3, seqno=1000, created_at=0.0)
        hops = [
            DecodedHop((3, 2), 1, (1, 1)),
            DecodedHop((2, 1), 0, (0, 0)),
        ]
        good = AnnotationDecodeError(
            "x", cause="corrupt_symbol", partial_hops=hops, partial_path=(3, 2, 1)
        )
        before = system.estimator.n_samples((3, 2))
        system._try_salvage(good, packet, 1.0)
        report = system.report()
        assert report.salvaged_packets == 1
        assert report.salvaged_hops == 2
        assert system.estimator.n_samples((3, 2)) == before + 1
        # A prefix whose edges are not in the topology is rejected.
        bad = AnnotationDecodeError(
            "x",
            cause="corrupt_symbol",
            partial_hops=[DecodedHop((3, 1), 1, (1, 1))],
            partial_path=(3, 1),
        )
        system._try_salvage(bad, packet, 1.0)
        assert system.report().salvaged_packets == 1  # unchanged

    def test_unknown_cause_rejected(self):
        with pytest.raises(ValueError):
            AnnotationDecodeError("x", cause="cosmic_rays")
