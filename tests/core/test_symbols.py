"""Tests for the aggregated retransmission-count symbol set."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.symbols import SymbolSet


class TestUnaggregated:
    def test_alphabet_spans_counts(self):
        ss = SymbolSet(max_count=5)
        assert ss.num_symbols == 6
        assert not ss.aggregated
        assert ss.escape_symbol is None

    def test_identity_mapping(self):
        ss = SymbolSet(max_count=10)
        for c in range(11):
            enc = ss.to_symbol(c)
            assert enc.symbol == c and enc.escape_extra is None
            assert ss.from_symbol(enc.symbol) == c

    def test_out_of_range_count(self):
        ss = SymbolSet(max_count=3)
        with pytest.raises(ValueError):
            ss.to_symbol(4)
        with pytest.raises(ValueError):
            ss.to_symbol(-1)


class TestAggregated:
    def test_alphabet_size(self):
        ss = SymbolSet(max_count=30, aggregation_threshold=3)
        assert ss.num_symbols == 4  # 0,1,2 exact + escape
        assert ss.escape_symbol == 3
        assert ss.is_escape(3) and not ss.is_escape(2)

    def test_small_counts_exact(self):
        ss = SymbolSet(max_count=30, aggregation_threshold=3)
        for c in range(3):
            enc = ss.to_symbol(c)
            assert enc.symbol == c and enc.escape_extra is None

    def test_large_counts_escape(self):
        ss = SymbolSet(max_count=30, aggregation_threshold=3)
        enc = ss.to_symbol(7)
        assert enc.symbol == 3 and enc.escape_extra == 4
        assert ss.from_symbol(3, 4) == 7

    def test_escape_boundary(self):
        ss = SymbolSet(max_count=10, aggregation_threshold=4)
        enc = ss.to_symbol(4)
        assert enc.symbol == 4 and enc.escape_extra == 0

    def test_from_symbol_requires_extra_for_escape(self):
        ss = SymbolSet(max_count=10, aggregation_threshold=2)
        with pytest.raises(ValueError):
            ss.from_symbol(2)

    def test_from_symbol_rejects_extra_on_exact(self):
        ss = SymbolSet(max_count=10, aggregation_threshold=2)
        with pytest.raises(ValueError):
            ss.from_symbol(1, 3)

    def test_from_symbol_rejects_extra_beyond_max(self):
        ss = SymbolSet(max_count=5, aggregation_threshold=3)
        with pytest.raises(ValueError):
            ss.from_symbol(3, 10)

    def test_counts_range(self):
        ss = SymbolSet(max_count=9, aggregation_threshold=3)
        assert ss.symbol_counts_range(1) == (1, 1)
        assert ss.symbol_counts_range(3) == (3, 9)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SymbolSet(max_count=5, aggregation_threshold=0)
        with pytest.raises(ValueError):
            SymbolSet(max_count=5, aggregation_threshold=6)

    def test_threshold_equal_max_count(self):
        ss = SymbolSet(max_count=5, aggregation_threshold=5)
        enc = ss.to_symbol(5)
        assert enc.symbol == 5 and enc.escape_extra == 0

    def test_equality(self):
        assert SymbolSet(10, 3) == SymbolSet(10, 3)
        assert SymbolSet(10, 3) != SymbolSet(10, 4)
        assert SymbolSet(10) != SymbolSet(11)


@given(
    max_count=st.integers(min_value=1, max_value=60),
    data=st.data(),
)
def test_property_roundtrip(max_count, data):
    """to_symbol/from_symbol invert for every count and any threshold."""
    threshold = data.draw(
        st.one_of(st.none(), st.integers(min_value=1, max_value=max_count))
    )
    ss = SymbolSet(max_count, threshold)
    count = data.draw(st.integers(min_value=0, max_value=max_count))
    enc = ss.to_symbol(count)
    assert 0 <= enc.symbol < ss.num_symbols
    assert ss.from_symbol(enc.symbol, enc.escape_extra) == count
    lo, hi = ss.symbol_counts_range(enc.symbol)
    assert lo <= count <= hi
