"""Tests for model management and the geometric prior."""

import math

import pytest

from repro.core.model import ModelManager, geometric_symbol_probabilities
from repro.core.symbols import SymbolSet


class TestGeometricPrior:
    def test_probabilities_sum_to_one(self):
        ss = SymbolSet(max_count=30, aggregation_threshold=3)
        probs = geometric_symbol_probabilities(ss, 0.2)
        assert math.isclose(sum(probs), 1.0)
        assert len(probs) == ss.num_symbols

    def test_good_link_mass_on_zero(self):
        ss = SymbolSet(max_count=30, aggregation_threshold=3)
        probs = geometric_symbol_probabilities(ss, 0.05)
        assert probs[0] > 0.9
        assert probs == sorted(probs, reverse=True)

    def test_escape_collects_tail(self):
        ss = SymbolSet(max_count=30, aggregation_threshold=2)
        probs = geometric_symbol_probabilities(ss, 0.5)
        # Tail mass = p^2 (normalized by truncation)
        assert probs[2] == pytest.approx(0.25, abs=0.01)

    def test_unaggregated_matches_geometric(self):
        ss = SymbolSet(max_count=10)
        probs = geometric_symbol_probabilities(ss, 0.3)
        assert probs[1] / probs[0] == pytest.approx(0.3, rel=1e-6)

    def test_total_loss_degenerates_to_uniform(self):
        ss = SymbolSet(max_count=5)
        probs = geometric_symbol_probabilities(ss, 1.0)
        assert all(math.isclose(p, probs[0]) for p in probs)


class TestModelManager:
    def make(self, **kw):
        ss = SymbolSet(max_count=30, aggregation_threshold=3)
        defaults = dict(
            initial_expected_loss=0.2,
            update_period=10.0,
            num_nodes_for_dissemination=50,
        )
        defaults.update(kw)
        return ModelManager(ss, **defaults)

    def test_initial_model_usable(self):
        mm = self.make()
        assert mm.current_epoch == 0
        table = mm.table()
        assert table.num_symbols == 4
        assert table.probability(0) > table.probability(3)

    def test_update_requires_observations(self):
        mm = self.make()
        assert mm.maybe_update(10.0) is False
        assert mm.current_epoch == 0

    def test_update_shifts_model_toward_observations(self):
        mm = self.make()
        # Saturate with symbol 2 (two retransmissions everywhere).
        mm.observe_symbols([2] * 500 + [0] * 10, time=5.0)
        assert mm.maybe_update(10.0) is True
        assert mm.current_epoch == 1
        new = mm.table()
        assert new.probability(2) > 0.8

    def test_estimation_window_drops_stale(self):
        mm = self.make(update_period=10.0, estimation_window=10.0)
        mm.observe_symbols([3] * 100, time=1.0)
        mm.maybe_update(10.0)
        # New observations only; old ones now outside the window.
        mm.observe_symbols([0] * 100, time=15.0)
        mm.maybe_update(20.0)
        assert mm.table().probability(0) > mm.table().probability(3)

    def test_updates_disabled(self):
        mm = self.make(update_period=None)
        mm.observe_symbols([1] * 100, time=1.0)
        assert mm.maybe_update(100.0) is False
        assert mm.total_dissemination_bits == 0

    def test_dissemination_accounting(self):
        mm = self.make(num_nodes_for_dissemination=100, bits_per_frequency=12)
        mm.observe_symbols([0] * 50, time=1.0)
        mm.maybe_update(10.0)
        per_node = 8 + 4 * 12  # header + 4 symbols
        assert mm.total_dissemination_bits == per_node * 100
        assert mm.updates_performed == 1

    def test_epoch_history_eviction(self):
        mm = self.make(epoch_history=2)
        for i in range(4):
            mm.observe_symbols([0] * 10, time=float(i * 10 + 5))
            mm.maybe_update(float((i + 1) * 10))
        assert mm.current_epoch == 4
        with pytest.raises(KeyError):
            mm.table(0)
        mm.table(4)
        mm.table(3)

    def test_epoch_field_roundtrip(self):
        mm = self.make(epoch_history=4)
        bits = mm.epoch_field_bits
        for i in range(5):
            mm.observe_symbols([0] * 10, time=float(i * 10 + 5))
            mm.maybe_update(float((i + 1) * 10))
        epoch = mm.current_epoch
        field = epoch % (1 << bits)
        assert mm.resolve_epoch_field(field) == epoch

    def test_resolve_unknown_field(self):
        mm = self.make(epoch_history=1)
        with pytest.raises(KeyError):
            # epoch 0 retained; a field value not congruent to any epoch
            mm.resolve_epoch_field(1)

    def test_validation(self):
        ss = SymbolSet(5)
        with pytest.raises(ValueError):
            ModelManager(ss, update_period=0.0)
        with pytest.raises(ValueError):
            ModelManager(ss, epoch_history=0)
        with pytest.raises(ValueError):
            ModelManager(ss, initial_expected_loss=1.5)
