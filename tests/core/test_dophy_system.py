"""End-to-end tests: Dophy running inside the network simulator."""

import pytest

from repro.core.config import DophyConfig
from repro.core.dophy import DophySystem
from repro.net.link import uniform_loss_assigner
from repro.net.mac import MacConfig
from repro.net.routing import RoutingConfig
from repro.net.simulation import CollectionSimulation, SimulationConfig
from repro.net.topology import grid_topology, line_topology, random_geometric_topology


def run_dophy(topo, seed, *, dophy_config=None, sim_config=None, assigner=None):
    dophy = DophySystem(dophy_config or DophyConfig())
    sim = CollectionSimulation(
        topo,
        seed=seed,
        config=sim_config
        or SimulationConfig(
            duration=200.0,
            traffic_period=4.0,
            routing=RoutingConfig(etx_noise_std=0.0),
        ),
        link_assigner=assigner or uniform_loss_assigner(0.05, 0.35),
        observers=[dophy],
    )
    result = sim.run()
    return dophy, result


class TestEndToEnd:
    def test_no_decode_failures(self):
        dophy, result = run_dophy(line_topology(5), seed=1)
        report = dophy.report()
        assert report.decode_failures == 0
        assert report.packets_decoded == result.ground_truth.packets_delivered
        assert report.packets_decoded > 50

    def test_estimates_close_to_empirical_truth(self):
        dophy, result = run_dophy(line_topology(5), seed=2)
        report = dophy.report()
        truth = result.ground_truth.true_loss_map(kind="empirical")
        checked = 0
        for link, est in report.estimates.items():
            if est.n_samples < 100:
                continue
            assert link in truth
            assert abs(est.loss - truth[link]) < 0.08, (link, est.loss, truth[link])
            checked += 1
        assert checked >= 3  # all forwarding links of the line

    def test_covers_used_links_in_dynamic_grid(self):
        topo = grid_topology(4, 4, diagonal=True)
        dophy, result = run_dophy(
            topo,
            seed=3,
            sim_config=SimulationConfig(
                duration=300.0,
                traffic_period=3.0,
                routing=RoutingConfig(etx_noise_std=0.6, parent_switch_threshold=0.2),
            ),
        )
        report = dophy.report()
        assert result.routing.total_parent_changes > 0  # dynamics happened
        estimated = set(report.estimates)
        # Every link that carried >= 30 successful hops must be estimated.
        for link, usage in result.ground_truth.link_usage.items():
            if usage.received >= 30:
                assert link in estimated

    def test_annotation_overhead_small(self):
        """Mean annotation size stays within a couple of bytes on a line."""
        dophy, _ = run_dophy(
            line_topology(5),
            seed=4,
            assigner=uniform_loss_assigner(0.02, 0.1),
        )
        report = dophy.report()
        assert 0 < report.mean_annotation_bits < 64  # < 8 bytes incl. header

    def test_model_updates_happen_and_cost_bits(self):
        cfg = DophyConfig(model_update_period=30.0)
        dophy, result = run_dophy(line_topology(4), seed=5, dophy_config=cfg)
        report = dophy.report()
        assert report.model_updates >= 4
        assert report.dissemination_bits > 0
        assert dophy.control_overhead_bits() == report.dissemination_bits

    def test_static_model_mode(self):
        cfg = DophyConfig(model_update_period=None)
        dophy, _ = run_dophy(line_topology(4), seed=6, dophy_config=cfg)
        report = dophy.report()
        assert report.model_updates == 0
        assert report.dissemination_bits == 0
        assert report.decode_failures == 0

    def test_censored_mode_estimates(self):
        cfg = DophyConfig(aggregation_threshold=2, escape_mode="censored")
        dophy, result = run_dophy(
            line_topology(4),
            seed=7,
            assigner=uniform_loss_assigner(0.3, 0.5),
        )
        # run again explicitly with censored config
        dophy, result = run_dophy(
            line_topology(4),
            seed=7,
            dophy_config=cfg,
            assigner=uniform_loss_assigner(0.3, 0.5),
        )
        report = dophy.report()
        truth = result.ground_truth.true_loss_map(kind="empirical")
        assert report.decode_failures == 0
        for link, est in report.estimates.items():
            if est.n_samples >= 150:
                assert abs(est.loss - truth[link]) < 0.1

    def test_max_count_follows_mac(self):
        """The symbol alphabet adapts to the MAC's retry cap on attach."""
        cfg = DophyConfig(max_count=30, aggregation_threshold=3)
        dophy = DophySystem(cfg)
        sim = CollectionSimulation(
            line_topology(3),
            seed=8,
            config=SimulationConfig(
                duration=20.0, mac=MacConfig(max_retries=5)
            ),
            observers=[dophy],
        )
        sim.run()
        assert dophy.config.max_count == 5
        assert dophy.estimator.max_attempts == 6

    def test_report_before_attach_raises(self):
        with pytest.raises(RuntimeError):
            DophySystem().report()

    def test_bits_per_hop_accounting(self):
        dophy, _ = run_dophy(line_topology(6), seed=9)
        report = dophy.report()
        assert report.mean_bits_per_hop > 0
        assert report.total_overhead_bits >= report.total_annotation_bits


class TestDynamicsRobustness:
    def test_accuracy_survives_churn(self):
        """Dophy's per-packet evidence is unaffected by parent churn."""
        topo = random_geometric_topology(30, seed=21)
        dophy, result = run_dophy(
            topo,
            seed=21,
            sim_config=SimulationConfig(
                duration=400.0,
                traffic_period=4.0,
                routing=RoutingConfig(
                    etx_noise_std=0.8, parent_switch_threshold=0.1, beacon_period=2.0
                ),
            ),
        )
        report = dophy.report()
        truth = result.ground_truth.true_loss_map(kind="empirical")
        errors = [
            abs(est.loss - truth[link])
            for link, est in report.estimates.items()
            if est.n_samples >= 100 and link in truth
        ]
        assert errors, "expected several well-sampled links"
        assert sum(errors) / len(errors) < 0.05
