"""Randomized property suites for the codecs and the result dataclasses.

Driven by a seeded ``random.Random`` (printing the failing seed/case in
the assertion message) so failures replay exactly — no extra test
dependencies, and every run covers the same case set.
"""

import pickle
import random

from repro.core.config import DophyConfig
from repro.core.decoder import decode_annotation
from repro.core.path_codec import PathRankModel
from repro.net.topology import grid_topology, random_geometric_topology
from repro.workloads import (
    dophy_approach,
    line_scenario,
    run_comparison,
    run_replicated,
    tree_ratio_approach,
)

from tests.core.test_annotation_decode import annotate_path, make_codec

N_CASES = 60


class TestPathRankProperties:
    def _topologies(self):
        yield "grid4x4", grid_topology(4, 4)
        rng = random.Random(99)
        for i in range(3):
            yield f"rgg{i}", random_geometric_topology(
                20, radius=0.45, seed=rng.randrange(2**31)
            )

    def test_rank_neighbor_at_inverse_everywhere(self):
        """neighbor_at(sender, rank(sender, v)) == v for every edge, and
        rank(sender, neighbor_at(sender, k)) == k for every valid rank."""
        for label, topo in self._topologies():
            model = PathRankModel(topo)
            for node in topo.nodes:
                neighbors = list(topo.neighbors(node))
                for v in neighbors:
                    k = model.rank(node, v)
                    assert model.neighbor_at(node, k) == v, (label, node, v)
                for k in range(len(neighbors)):
                    assert model.rank(node, model.neighbor_at(node, k)) == k, (
                        label,
                        node,
                        k,
                    )

    def test_random_walks_roundtrip_through_ranks(self):
        """A random sinkward-ish walk encoded hop-by-hop as ranks decodes
        back to the identical node sequence."""
        rng = random.Random(2024)
        for label, topo in self._topologies():
            model = PathRankModel(topo)
            for case in range(N_CASES):
                node = rng.choice(list(topo.nodes))
                path = [node]
                for _ in range(rng.randrange(1, 8)):
                    nxt = rng.choice(list(topo.neighbors(path[-1])))
                    path.append(nxt)
                ranks = [
                    model.rank(a, b) for a, b in zip(path, path[1:])
                ]
                rebuilt = [path[0]]
                for k in ranks:
                    rebuilt.append(model.neighbor_at(rebuilt[-1], k))
                assert rebuilt == path, (label, case, path)


class TestAnnotationProperties:
    def test_random_paths_and_counts_roundtrip(self):
        """Seeded sweep over path shapes, retx counts, thresholds, and
        escape modes: serialize -> decode recovers path and counts (or a
        bound containing the count when censored)."""
        rng = random.Random(7)
        for case in range(N_CASES):
            num_nodes = rng.randrange(4, 64)
            threshold = rng.choice([None, 1, 2, 4, 8])
            escape_mode = rng.choice(["exact", "censored"])
            codec = make_codec(
                num_nodes=num_nodes,
                aggregation_threshold=threshold,
                escape_mode=escape_mode,
            )
            hop_count = rng.randrange(1, 11)
            origin = rng.randrange(1, num_nodes)
            middle = [rng.randrange(1, num_nodes) for _ in range(hop_count - 1)]
            path = [origin] + middle + [0]
            counts = [rng.randrange(0, 31) for _ in range(hop_count)]
            ctx = (case, num_nodes, threshold, escape_mode, path, counts)

            ann = annotate_path(codec, path, counts)
            payload, bits = codec.serialize(ann)
            assert bits == codec.wire_size_bits(ann), ctx
            decoded = decode_annotation(payload, bits, codec, origin=origin, sink=0)
            assert decoded.path == path, ctx
            assert len(decoded.hops) == hop_count, ctx
            for hop, count in zip(decoded.hops, counts):
                if hop.exact:
                    assert hop.retx_count == count, ctx
                else:
                    lo, hi = hop.retx_bounds
                    assert lo <= count <= hi, ctx

    def test_serialization_is_deterministic(self):
        """The same annotation serializes to the same bytes every time —
        a prerequisite for the cross-process determinism guarantee."""
        rng = random.Random(11)
        for case in range(20):
            num_nodes = rng.randrange(4, 32)
            codec_a = make_codec(num_nodes=num_nodes)
            codec_b = make_codec(num_nodes=num_nodes)
            hop_count = rng.randrange(1, 6)
            path = (
                [rng.randrange(1, num_nodes)]
                + [rng.randrange(1, num_nodes) for _ in range(hop_count - 1)]
                + [0]
            )
            counts = [rng.randrange(0, 31) for _ in range(hop_count)]
            out_a = codec_a.serialize(annotate_path(codec_a, path, counts))
            out_b = codec_b.serialize(annotate_path(codec_b, path, counts))
            assert out_a == out_b, (case, path, counts)


class TestResultPickleRoundTrip:
    """Every result object the pool ships between processes must survive
    pickling without losing a field."""

    def test_comparison_row_pickle_roundtrip(self):
        rows, _ = run_comparison(
            line_scenario(4, duration=40.0),
            [dophy_approach(), tree_ratio_approach()],
            seed=3,
        )
        for name, row in rows.items():
            clone = pickle.loads(pickle.dumps(row))
            assert clone == row, name
            assert clone.accuracy.per_link_errors == row.accuracy.per_link_errors

    def test_approach_outcome_pickle_roundtrip(self):
        scenario = line_scenario(
            4, duration=40.0
        )
        spec = dophy_approach(
            config=DophyConfig(dissemination_loss=0.2, model_update_period=15.0)
        )
        obs = spec.factory()
        result = scenario.make_simulation(5, [obs]).run()
        outcome = spec.extract(obs, result)
        clone = pickle.loads(pickle.dumps(outcome))
        assert clone.losses == outcome.losses
        assert clone.support == outcome.support
        assert clone.annotation_bits == outcome.annotation_bits
        assert clone.annotation_hops == outcome.annotation_hops
        assert clone.control_bits == outcome.control_bits
        assert clone.failure_counts == outcome.failure_counts

    def test_replicated_row_pickle_roundtrip(self):
        table = run_replicated(
            line_scenario(4, duration=40.0),
            [dophy_approach()],
            master_seed=5,
            replicates=2,
        )
        clone = pickle.loads(pickle.dumps(table))
        assert clone == table
