"""Round-trip tests for the annotation codec and sink decoder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annotation import AnnotationCodec
from repro.core.config import DophyConfig
from repro.core.decoder import AnnotationDecodeError, decode_annotation
from repro.core.model import ModelManager
from repro.core.symbols import SymbolSet


def make_codec(num_nodes=16, sink=0, **config_kw):
    cfg = DophyConfig(**config_kw)
    ss = SymbolSet(cfg.max_count, cfg.aggregation_threshold)
    mm = ModelManager(
        ss,
        initial_expected_loss=cfg.initial_expected_loss,
        update_period=cfg.model_update_period,
        num_nodes_for_dissemination=num_nodes,
    )
    return AnnotationCodec(cfg, mm, num_nodes)


def annotate_path(codec, path, counts):
    """Simulate hop-by-hop annotation over a node path."""
    ann = codec.new_annotation()
    for sender, receiver, count in zip(path, path[1:], counts):
        codec.annotate_hop(ann, sender, receiver, count)
    return ann


class TestRoundTrip:
    def test_simple_path(self):
        codec = make_codec()
        path = [5, 3, 1, 0]
        counts = [0, 2, 1]
        ann = annotate_path(codec, path, counts)
        data, bits = codec.serialize(ann)
        decoded = decode_annotation(data, bits, codec, origin=5, sink=0)
        assert decoded.path == path
        assert [h.retx_count for h in decoded.hops] == counts
        assert all(h.exact for h in decoded.hops)

    def test_escape_counts_exact_mode(self):
        codec = make_codec(aggregation_threshold=3, escape_mode="exact")
        path = [7, 2, 0]
        counts = [9, 15]  # both escape
        ann = annotate_path(codec, path, counts)
        data, bits = codec.serialize(ann)
        decoded = decode_annotation(data, bits, codec, origin=7, sink=0)
        assert [h.retx_count for h in decoded.hops] == counts

    def test_escape_counts_censored_mode(self):
        codec = make_codec(aggregation_threshold=3, escape_mode="censored")
        path = [7, 2, 0]
        counts = [9, 1]
        ann = annotate_path(codec, path, counts)
        data, bits = codec.serialize(ann)
        decoded = decode_annotation(data, bits, codec, origin=7, sink=0)
        first, second = decoded.hops
        assert not first.exact
        assert first.retx_bounds == (3, 30)
        assert second.exact and second.retx_count == 1

    def test_zero_hop_annotation(self):
        """A packet generated at a sink neighbor can have a single hop; zero
        hops only occurs for sink-origin packets, but the format permits it."""
        codec = make_codec()
        ann = codec.new_annotation()
        data, bits = codec.serialize(ann)
        decoded = decode_annotation(data, bits, codec, origin=4, sink=0)
        assert decoded.hops == []

    def test_assumed_path_mode(self):
        codec = make_codec(path_encoding="assumed")
        path = [9, 4, 0]
        counts = [1, 0]
        ann = annotate_path(codec, path, counts)
        data, bits = codec.serialize(ann)
        decoded = decode_annotation(
            data, bits, codec, origin=9, sink=0, assumed_path=path
        )
        assert decoded.path == path
        assert [h.retx_count for h in decoded.hops] == counts

    def test_assumed_mode_is_smaller(self):
        explicit = make_codec(path_encoding="explicit")
        assumed = make_codec(path_encoding="assumed")
        path = [9, 4, 2, 1, 0]
        counts = [0, 0, 1, 0]
        _, bits_explicit = explicit.serialize(annotate_path(explicit, path, counts))
        _, bits_assumed = assumed.serialize(annotate_path(assumed, path, counts))
        assert bits_assumed < bits_explicit

    def test_counts_clamped_to_max(self):
        codec = make_codec(aggregation_threshold=None)
        ann = codec.new_annotation()
        codec.annotate_hop(ann, 2, 0, 99)  # beyond max_count=30 -> clamped
        data, bits = codec.serialize(ann)
        decoded = decode_annotation(data, bits, codec, origin=2, sink=0)
        assert decoded.hops[0].retx_count == 30

    def test_epoch_travels_with_annotation(self):
        codec = make_codec()
        mm = codec.models
        ann_old = codec.new_annotation()
        codec.annotate_hop(ann_old, 3, 0, 0)
        # Publish a new model while the packet is "in flight".
        mm.observe_symbols([0] * 50, time=1.0)
        assert mm.maybe_update(10.0)
        ann_new = codec.new_annotation()
        codec.annotate_hop(ann_new, 3, 0, 0)
        assert ann_old.epoch == 0 and ann_new.epoch == 1
        for ann, origin in [(ann_old, 3), (ann_new, 3)]:
            data, bits = codec.serialize(ann)
            decoded = decode_annotation(data, bits, codec, origin=origin, sink=0)
            assert decoded.epoch == ann.epoch
            assert decoded.hops[0].retx_count == 0


class TestWireSizeAccounting:
    def test_wire_size_matches_serialization(self):
        codec = make_codec()
        path = [5, 3, 1, 0]
        ann = annotate_path(codec, path, [0, 4, 1])
        predicted = codec.wire_size_bits(ann)
        _, actual = codec.serialize(ann)
        assert predicted == actual

    def test_header_bits_gamma_hop_count(self):
        codec = make_codec()
        ann = codec.new_annotation()
        short = codec.header_bits(ann)  # hop_count=0 -> gamma is 1 bit
        for hop in range(9):
            codec.annotate_hop(ann, 5, 0 if hop == 8 else hop + 1, 0)
        long = codec.header_bits(ann)
        assert long > short  # gamma grows with hop count
        assert short == codec.models.epoch_field_bits + 1

    def test_size_grows_with_hops(self):
        codec = make_codec()
        sizes = []
        ann = codec.new_annotation()
        for hop in range(1, 8):
            codec.annotate_hop(ann, hop - 1, hop, 0)
            sizes.append(codec.wire_size_bits(ann))
        assert sizes == sorted(sizes)

    def test_good_links_cost_few_bits_per_hop(self):
        """Counts of 0 under a matched skewed model cost < 1 bit each."""
        codec = make_codec(
            path_encoding="assumed", initial_expected_loss=0.05
        )
        ann = codec.new_annotation()
        for hop in range(1, 11):
            codec.annotate_hop(ann, hop - 1, hop, 0)
        _, bits = codec.serialize(ann)
        payload = bits - codec.header_bits(ann)
        assert payload / 10 < 1.0


class TestDecodeErrors:
    def test_assumed_mode_requires_path(self):
        codec = make_codec(path_encoding="assumed")
        ann = annotate_path(codec, [3, 1, 0], [0, 0])
        data, bits = codec.serialize(ann)
        with pytest.raises(AnnotationDecodeError):
            decode_annotation(data, bits, codec, origin=3, sink=0)

    def test_assumed_path_length_mismatch(self):
        codec = make_codec(path_encoding="assumed")
        ann = annotate_path(codec, [3, 1, 0], [0, 0])
        data, bits = codec.serialize(ann)
        with pytest.raises(AnnotationDecodeError):
            decode_annotation(
                data, bits, codec, origin=3, sink=0, assumed_path=[3, 0]
            )

    def test_truncated_annotation_detected(self):
        """Truncation is caught in the header, the path, or the path checks."""
        codec = make_codec()
        ann = annotate_path(codec, [5, 3, 1, 0], [4, 4, 4])
        data, bits = codec.serialize(ann)
        for keep in [1, codec.models.epoch_field_bits, bits // 4]:
            with pytest.raises(AnnotationDecodeError):
                decode_annotation(data, keep, codec, origin=5, sink=0)

    def test_wrong_sink_detected(self):
        codec = make_codec()
        ann = annotate_path(codec, [5, 3, 1], [0, 0])  # path ends at 1, not sink 0
        data, bits = codec.serialize(ann)
        with pytest.raises(AnnotationDecodeError):
            decode_annotation(data, bits, codec, origin=5, sink=0)

    def test_long_paths_supported(self):
        """Gamma hop counts impose no fixed-field limit on path length."""
        codec = make_codec(num_nodes=256)
        ann = codec.new_annotation()
        for hop in range(99):
            codec.annotate_hop(ann, 7, hop % 255 + 1, 0)
        codec.annotate_hop(ann, 7, 0, 0)
        data, bits = codec.serialize(ann)
        decoded = decode_annotation(data, bits, codec, origin=7, sink=0)
        assert len(decoded.hops) == 100


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_property_annotation_roundtrip(data):
    """Any path and any counts round-trip through serialize/decode."""
    num_nodes = data.draw(st.integers(min_value=4, max_value=64))
    threshold = data.draw(st.one_of(st.none(), st.integers(min_value=1, max_value=8)))
    codec = make_codec(
        num_nodes=num_nodes,
        aggregation_threshold=threshold,
        escape_mode=data.draw(st.sampled_from(["exact", "censored"])),
    )
    hop_count = data.draw(st.integers(min_value=1, max_value=10))
    # Intermediate nodes arbitrary; path ends at the sink (0).
    middle = data.draw(
        st.lists(
            st.integers(min_value=1, max_value=num_nodes - 1),
            min_size=hop_count - 1,
            max_size=hop_count - 1,
        )
    )
    origin = data.draw(st.integers(min_value=1, max_value=num_nodes - 1))
    path = [origin] + middle + [0]
    counts = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=30),
            min_size=hop_count,
            max_size=hop_count,
        )
    )
    ann = annotate_path(codec, path, counts)
    payload, bits = codec.serialize(ann)
    decoded = decode_annotation(payload, bits, codec, origin=origin, sink=0)
    assert decoded.path == path
    for hop, count in zip(decoded.hops, counts):
        if hop.exact:
            assert hop.retx_count == count
        else:
            lo, hi = hop.retx_bounds
            assert lo <= count <= hi
