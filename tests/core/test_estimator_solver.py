"""Differential tests for the batched MLE solver.

The correctness oracle for the vectorized safeguarded-Newton rewrite:
on randomized exact/censored evidence corpora, the batched solver must
agree with the retired per-link scipy solve (kept as
``PerLinkEstimator.estimate_scipy``) to within 1e-6, including the
boundary cases (all-first-attempt, all-censored, single sample). The
sliding-window estimator's incremental statistics are pinned to a
from-scratch rebuild the same way.
"""

import numpy as np
import pytest

from repro.core.estimator import PerLinkEstimator, SuffStats, solve_batch
from repro.core.windowed import SlidingLinkEstimator

TOL = 1e-6
#: Likelihood-equivalence fallback: when the evidence is boundary-degenerate
#: (analytic MLE at or beyond p=1) the objective is flat to ~1e-10 near the
#: bound and both solvers stop at likelihood-identical points that can differ
#: in p by more than TOL. Two answers within this NLL gap are the same MLE.
NLL_TOL = 1e-8


def assert_same_mle(est, link, got_loss, ref_loss):
    """got and ref agree in p, or sit on the same flat likelihood stretch."""
    if got_loss == pytest.approx(ref_loss, abs=TOL):
        return
    data = est._data[link]
    gap = abs(est._neg_log_likelihood(got_loss, data)
              - est._neg_log_likelihood(ref_loss, data))
    assert gap < NLL_TOL, (link, got_loss, ref_loss, gap)


def draw_attempt(rng, loss, max_attempts):
    """One first-success attempt index conditioned on success within the cap."""
    while True:
        a = 1
        while rng.random() < loss:
            a += 1
            if a > max_attempts:
                break
        if a <= max_attempts:
            return a


def random_corpus(rng, n_links, max_attempts, *, censored_frac=0.3, escape_at=None):
    """Feed a fresh estimator pair-source with randomized evidence.

    Returns a list of (link, fed-anything) so callers can iterate. Loss
    ratios, sample counts, and censoring style vary per link; censored
    intervals are either the Dophy escape style (K..A-1) or random
    sub-intervals, always informative (never the full range).
    """
    feeds = []
    for i in range(n_links):
        link = (i + 1, 0)
        loss = float(rng.uniform(0.02, 0.9))
        n = int(rng.integers(1, 150))
        rows = []
        for _ in range(n):
            a = draw_attempt(rng, loss, max_attempts)
            c = a - 1
            if max_attempts > 2 and rng.random() < censored_frac:
                if escape_at is not None and c >= escape_at:
                    rows.append(("cens", escape_at, max_attempts - 1))
                elif escape_at is None:
                    lo = int(rng.integers(0, max_attempts - 1))
                    hi = int(rng.integers(lo, max_attempts - 1))
                    if not (lo == 0 and hi == max_attempts - 1):
                        rows.append(("cens", lo, hi))
                    else:
                        rows.append(("exact", c, None))
                else:
                    rows.append(("exact", c, None))
            else:
                rows.append(("exact", c, None))
        feeds.append((link, rows))
    return feeds


def feed(est, feeds):
    for link, rows in feeds:
        for kind, a, b in rows:
            if kind == "exact":
                est.add_exact(link, a)
            else:
                est.add_censored(link, a, b)


@pytest.mark.parametrize("max_attempts", [2, 3, 5, 8, 31])
@pytest.mark.parametrize("truncation", [True, False])
def test_batched_matches_scipy_reference(max_attempts, truncation):
    """The headline differential: randomized corpus, every link within 1e-6."""
    rng = np.random.default_rng(1000 + max_attempts + int(truncation))
    est = PerLinkEstimator(max_attempts, truncation_correction=truncation)
    feed(est, random_corpus(rng, 40, max_attempts, escape_at=None))
    batched = est.estimates()
    assert set(batched) == set(est.links())
    stderr_compared = 0
    for link in est.links():
        ref = est.estimate_scipy(link)
        got = batched[link]
        assert_same_mle(est, link, got.loss, ref.loss)
        assert got.n_exact == ref.n_exact
        assert got.n_censored == ref.n_censored
        if got.stderr is not None and ref.stderr is not None:
            assert got.stderr == pytest.approx(ref.stderr, rel=1e-2)
            stderr_compared += 1
    assert stderr_compared > 10  # the stderr comparison actually ran


def test_escape_style_censoring_matches_reference():
    """Dophy's real censoring pattern: counts >= K arrive as [K, A-1]."""
    rng = np.random.default_rng(7)
    A = 16
    est = PerLinkEstimator(A)
    feed(est, random_corpus(rng, 30, A, censored_frac=0.5, escape_at=3))
    for link, got in est.estimates().items():
        ref = est.estimate_scipy(link)
        assert_same_mle(est, link, got.loss, ref.loss)


def test_estimate_equals_estimates_entry():
    """Single-link and all-links paths share one solver."""
    rng = np.random.default_rng(8)
    est = PerLinkEstimator(8)
    feed(est, random_corpus(rng, 10, 8))
    batched = est.estimates()
    for link in est.links():
        single = est.estimate(link)
        assert single.loss == batched[link].loss
        assert single.stderr == batched[link].stderr


class TestBoundaryCases:
    LINK = (1, 0)

    def test_all_first_attempt_matches_reference(self):
        est = PerLinkEstimator(31)
        for _ in range(100):
            est.add_exact(self.LINK, 0)
        got = est.estimate(self.LINK)
        ref = est.estimate_scipy(self.LINK)
        assert got.loss == ref.loss  # identical Jeffreys branch
        assert got.stderr == ref.stderr

    def test_single_exact_sample(self):
        for a in [1, 3, 7]:
            est = PerLinkEstimator(8)
            est.add_exact(self.LINK, a)
            got = est.estimate(self.LINK)
            ref = est.estimate_scipy(self.LINK)
            assert got.loss == pytest.approx(ref.loss, abs=TOL), a

    def test_single_censored_sample(self):
        est = PerLinkEstimator(8)
        est.add_censored(self.LINK, 3, 6)
        got = est.estimate(self.LINK)
        ref = est.estimate_scipy(self.LINK)
        assert got.loss == pytest.approx(ref.loss, abs=TOL)

    def test_all_censored(self):
        rng = np.random.default_rng(9)
        A = 31
        est = PerLinkEstimator(A)
        for _ in range(500):
            a = draw_attempt(rng, 0.5, A)
            if a - 1 >= 2:
                est.add_censored(self.LINK, 2, A - 1)
            else:
                est.add_censored(self.LINK, 0, 1)
        got = est.estimate(self.LINK)
        ref = est.estimate_scipy(self.LINK)
        assert got.loss == pytest.approx(ref.loss, abs=TOL)
        assert abs(got.loss - 0.5) < 0.1

    def test_uninformative_evidence_stays_finite(self):
        """A full-range censored interval under truncation correction has a
        flat likelihood; any in-range value is acceptable — it must just
        not crash or return garbage."""
        est = PerLinkEstimator(8)
        est.add_censored(self.LINK, 0, 7)
        got = est.estimate(self.LINK)
        assert got is not None
        assert 0.0 <= got.loss <= 1.0

    def test_closed_form_no_truncation(self):
        """Uncensored evidence without truncation correction takes the
        closed-form geometric MLE S / (n + S)."""
        est = PerLinkEstimator(31, truncation_correction=False)
        counts = [0, 2, 1, 0, 4, 3, 0, 1]
        for c in counts:
            est.add_exact(self.LINK, c)
        got = est.estimate(self.LINK)
        s, n = sum(counts), len(counts)
        assert got.loss == pytest.approx(s / (n + s), abs=1e-12)
        ref = est.estimate_scipy(self.LINK)
        assert got.loss == pytest.approx(ref.loss, abs=TOL)


class TestSlidingIncremental:
    """The incremental window statistics equal a from-scratch rebuild."""

    LINK = (1, 0)

    def _reference(self, events, now, window, A):
        ref = PerLinkEstimator(A)
        for t, kind, a, b in events:
            if now - window < t <= now:
                if kind == "exact":
                    ref.add_exact(self.LINK, a)
                else:
                    ref.add_censored(self.LINK, a, b)
        return ref.estimate(self.LINK)

    def _random_events(self, rng, n, A):
        events = []
        t = 0.0
        for _ in range(n):
            t += float(rng.exponential(0.4))
            if rng.random() < 0.25:
                lo = int(rng.integers(0, A - 1))
                hi = int(rng.integers(lo, A - 1))
                events.append((t, "cens", lo, hi))
            else:
                events.append((t, "exact", int(rng.integers(0, A)), None))
        return events

    def _feed(self, sliding, events):
        for t, kind, a, b in events:
            if kind == "exact":
                sliding.add_exact(self.LINK, a, t)
            else:
                sliding.add_censored(self.LINK, a, b, t)

    def test_ascending_timeline_matches_rebuild(self):
        rng = np.random.default_rng(20)
        A, W = 8, 15.0
        sliding = SlidingLinkEstimator(max_attempts=A, window=W)
        events = self._random_events(rng, 600, A)
        self._feed(sliding, events)
        horizon = events[-1][0]
        for now in np.linspace(0.0, horizon + 5.0, 60):
            got = sliding.estimate(self.LINK, float(now))
            want = self._reference(events, float(now), W, A)
            assert (got is None) == (want is None), now
            if got is not None:
                assert got.loss == pytest.approx(want.loss, abs=1e-12), now
                assert got.n_samples == want.n_samples

    def test_backward_query_matches_rebuild(self):
        rng = np.random.default_rng(21)
        A, W = 8, 10.0
        sliding = SlidingLinkEstimator(max_attempts=A, window=W)
        events = self._random_events(rng, 300, A)
        self._feed(sliding, events)
        horizon = events[-1][0]
        for now in [horizon, horizon * 0.3, horizon * 0.8, horizon * 0.1]:
            got = sliding.estimate(self.LINK, now)
            want = self._reference(events, now, W, A)
            assert (got is None) == (want is None)
            if got is not None:
                assert got.loss == pytest.approx(want.loss, abs=1e-12)

    def test_interleaved_feed_and_query(self):
        """Arrivals between queries (the live-listener pattern) slide the
        window forward without drift from the rebuilt truth."""
        rng = np.random.default_rng(22)
        A, W = 8, 12.0
        sliding = SlidingLinkEstimator(max_attempts=A, window=W)
        events = self._random_events(rng, 500, A)
        fed = []
        for i, ev in enumerate(events):
            self._feed(sliding, [ev])
            fed.append(ev)
            if i % 25 == 0:
                now = ev[0]
                got = sliding.estimate(self.LINK, now)
                want = self._reference(fed, now, W, A)
                if got is not None:
                    assert got.loss == pytest.approx(want.loss, abs=1e-12)

    def test_out_of_order_arrivals_match_rebuild(self):
        rng = np.random.default_rng(23)
        A, W = 8, 10.0
        sliding = SlidingLinkEstimator(max_attempts=A, window=W)
        fed = []
        t = 0.0
        for i in range(400):
            t += float(rng.exponential(0.5))
            # 20% of arrivals are late by up to 2 windows.
            tt = t - float(rng.uniform(0.0, 2 * W)) if rng.random() < 0.2 else t
            ev = (max(0.0, tt), "exact", int(rng.integers(0, A)), None)
            self._feed(sliding, [ev])
            fed.append(ev)
            if i % 20 == 0:
                got = sliding.estimate(self.LINK, t)
                want = self._reference(fed, t, W, A)
                if got is not None:
                    assert got.loss == pytest.approx(want.loss, abs=1e-12)

    def test_prune_then_query_matches_rebuild(self):
        rng = np.random.default_rng(24)
        A, W = 8, 10.0
        sliding = SlidingLinkEstimator(max_attempts=A, window=W)
        events = self._random_events(rng, 300, A)
        self._feed(sliding, events)
        horizon = events[-1][0]
        sliding.estimate(self.LINK, horizon)  # warm the window state
        sliding.prune(before=horizon - 3 * W)
        kept = [e for e in events if e[0] >= horizon - 3 * W]
        got = sliding.estimate(self.LINK, horizon)
        want = self._reference(kept, horizon, W, A)
        assert got.loss == pytest.approx(want.loss, abs=1e-12)

    def test_batched_estimates_across_links(self):
        rng = np.random.default_rng(25)
        A, W = 8, 20.0
        sliding = SlidingLinkEstimator(max_attempts=A, window=W)
        for i in range(12):
            link = (i + 1, 0)
            for t in np.linspace(0.0, 50.0, 40):
                sliding.add_exact(link, int(rng.integers(0, A)), float(t))
        batched = sliding.estimates(now=50.0)
        for link, est in batched.items():
            single = sliding.estimate(link, now=50.0)
            assert est.loss == single.loss


def test_solve_batch_none_for_empty_entries():
    """solve_batch mirrors its input positionally: empty stats -> None."""
    stats = [
        SuffStats((1, 0), 0, 0, {}),
        SuffStats((2, 0), 5, 3, {}),
        SuffStats((3, 0), 0, 0, {(2, 8): 4}),
    ]
    out = solve_batch(stats, 8)
    assert out[0] is None
    assert out[1] is not None and out[1].link == (2, 0)
    assert out[2] is not None and out[2].n_censored == 4
