"""Tests for compressed path encoding (PathRankModel + codec integration)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annotation import AnnotationCodec
from repro.core.config import DophyConfig
from repro.core.decoder import decode_annotation
from repro.core.dophy import DophySystem
from repro.core.model import ModelManager
from repro.core.path_codec import PathRankModel
from repro.core.symbols import SymbolSet
from repro.net.link import uniform_loss_assigner
from repro.net.routing import RoutingConfig
from repro.net.simulation import CollectionSimulation, SimulationConfig
from repro.net.topology import (
    grid_topology,
    line_topology,
    random_geometric_topology,
    topology_from_edges,
)


class TestPathRankModel:
    def test_rank_orders_sinkward_first(self):
        # Diamond: node 3 neighbors are 1 and 2 (both depth 1).
        topo = topology_from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        model = PathRankModel(topo)
        assert model.rank(3, 1) == 0  # tie broken by node id
        assert model.rank(3, 2) == 1
        # Node 1's neighbors: 0 (depth 0) before 3 (depth 2).
        assert model.rank(1, 0) == 0
        assert model.rank(1, 3) == 1

    def test_rank_inverts(self):
        topo = grid_topology(4, 4, diagonal=True)
        model = PathRankModel(topo)
        for u in topo.nodes:
            for v in topo.neighbors(u):
                assert model.neighbor_at(u, model.rank(u, v)) == v

    def test_non_neighbor_rejected(self):
        topo = line_topology(4)
        model = PathRankModel(topo)
        with pytest.raises(ValueError):
            model.rank(0, 3)
        with pytest.raises(ValueError):
            model.neighbor_at(0, 5)
        with pytest.raises(ValueError):
            model.neighbor_at(99, 0)

    def test_table_skewed_toward_rank_zero(self):
        topo = grid_topology(4, 4, diagonal=True)
        model = PathRankModel(topo, rank_decay=0.3)
        probs = model.table.probabilities()
        assert probs == sorted(probs, reverse=True)
        assert probs[0] > 0.5

    def test_invalid_decay(self):
        topo = line_topology(3)
        with pytest.raises(ValueError):
            PathRankModel(topo, rank_decay=0.0)
        with pytest.raises(ValueError):
            PathRankModel(topo, rank_decay=1.0)

    def test_expected_bits_per_hop(self):
        topo = grid_topology(3, 3, diagonal=True)
        model = PathRankModel(topo)
        # Everything rank 0 -> cost = -log2 P(0), well under 1 bit.
        assert model.expected_bits_per_hop([0] * 100) < 1.0
        assert model.expected_bits_per_hop([]) == 0.0


def make_codec(topo, **config_kw):
    cfg = DophyConfig(path_encoding="compressed", **config_kw)
    ss = SymbolSet(cfg.max_count, cfg.aggregation_threshold)
    mm = ModelManager(ss, num_nodes_for_dissemination=topo.num_nodes)
    return AnnotationCodec(cfg, mm, topo.num_nodes, PathRankModel(topo))


class TestCompressedAnnotation:
    def test_roundtrip_on_grid(self):
        topo = grid_topology(4, 4, diagonal=True)
        codec = make_codec(topo)
        path = [15, 10, 5, 0]
        counts = [0, 4, 1]
        ann = codec.new_annotation()
        for s, r, c in zip(path, path[1:], counts):
            codec.annotate_hop(ann, s, r, c)
        data, bits = codec.serialize(ann)
        decoded = decode_annotation(data, bits, codec, origin=15, sink=0)
        assert decoded.path == path
        assert [h.retx_count for h in decoded.hops] == counts

    def test_roundtrip_detour_path(self):
        """Paths that move laterally or away from the sink still decode."""
        topo = grid_topology(3, 3)
        codec = make_codec(topo)
        path = [8, 7, 4, 5, 2, 1, 0]  # includes a sideways + backward hop
        counts = [0, 1, 0, 2, 0, 0]
        ann = codec.new_annotation()
        for s, r, c in zip(path, path[1:], counts):
            codec.annotate_hop(ann, s, r, c)
        data, bits = codec.serialize(ann)
        decoded = decode_annotation(data, bits, codec, origin=8, sink=0)
        assert decoded.path == path

    def test_requires_path_model(self):
        topo = line_topology(4)
        cfg = DophyConfig(path_encoding="compressed")
        ss = SymbolSet(cfg.max_count, cfg.aggregation_threshold)
        mm = ModelManager(ss)
        with pytest.raises(ValueError):
            AnnotationCodec(cfg, mm, topo.num_nodes, path_model=None)

    def test_compressed_smaller_than_explicit_on_large_net(self):
        topo = random_geometric_topology(100, seed=3)
        compressed = make_codec(topo)
        explicit_cfg = DophyConfig(path_encoding="explicit")
        ss = SymbolSet(explicit_cfg.max_count, explicit_cfg.aggregation_threshold)
        mm = ModelManager(ss, num_nodes_for_dissemination=topo.num_nodes)
        explicit = AnnotationCodec(explicit_cfg, mm, topo.num_nodes)
        # A typical sinkward path: follow best-rank neighbors.
        model = compressed.path_model
        path = [87]
        while path[-1] != 0 and len(path) < 20:
            path.append(model.neighbor_at(path[-1], 0))
        counts = [0] * (len(path) - 1)
        ann_c = compressed.new_annotation()
        ann_e = explicit.new_annotation()
        for s, r, c in zip(path, path[1:], counts):
            compressed.annotate_hop(ann_c, s, r, c)
            explicit.annotate_hop(ann_e, s, r, c)
        _, bits_c = compressed.serialize(ann_c)
        _, bits_e = explicit.serialize(ann_e)
        assert bits_c < 0.6 * bits_e  # 7-bit ids vs ~sub-1-bit ranks


class TestCompressedEndToEnd:
    def run_system(self, path_encoding):
        topo = random_geometric_topology(40, seed=17)
        dophy = DophySystem(DophyConfig(path_encoding=path_encoding))
        sim = CollectionSimulation(
            topo,
            seed=17,
            config=SimulationConfig(
                duration=200.0,
                traffic_period=4.0,
                routing=RoutingConfig(etx_noise_std=0.5),
            ),
            link_assigner=uniform_loss_assigner(0.05, 0.3),
            observers=[dophy],
        )
        result = sim.run()
        return dophy.report(), result

    def test_no_decode_failures_under_dynamics(self):
        report, result = self.run_system("compressed")
        assert report.decode_failures == 0
        assert report.packets_decoded == result.ground_truth.packets_delivered

    def test_same_estimates_as_explicit(self):
        rep_c, _ = self.run_system("compressed")
        rep_e, _ = self.run_system("explicit")
        assert set(rep_c.estimates) == set(rep_e.estimates)
        for link in rep_c.estimates:
            assert rep_c.estimates[link].loss == pytest.approx(
                rep_e.estimates[link].loss, abs=1e-12
            )

    def test_clearly_smaller_annotations(self):
        rep_c, _ = self.run_system("compressed")
        rep_e, _ = self.run_system("explicit")
        assert rep_c.mean_annotation_bits < 0.75 * rep_e.mean_annotation_bits


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500), data=st.data())
def test_property_compressed_roundtrip_random_walks(seed, data):
    """Any neighbor-to-neighbor walk round-trips through the compressed codec."""
    topo = grid_topology(4, 4, diagonal=True)
    codec = make_codec(topo)
    length = data.draw(st.integers(min_value=1, max_value=8))
    path = [data.draw(st.sampled_from(topo.nodes))]
    for _ in range(length - 1):
        path.append(data.draw(st.sampled_from(topo.neighbors(path[-1]))))
    # Walks must end at the sink for the decoder's final check.
    while path[-1] != 0:
        path.append(PathRankModel(topo).neighbor_at(path[-1], 0))
        if len(path) > 30:
            return  # pathological walk; skip
    counts = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=30),
            min_size=len(path) - 1,
            max_size=len(path) - 1,
        )
    )
    ann = codec.new_annotation()
    for s, r, c in zip(path, path[1:], counts):
        codec.annotate_hop(ann, s, r, c)
    decoded = decode_annotation(
        *codec.serialize(ann), codec, origin=path[0], sink=0
    )
    assert decoded.path == path
    for hop, c in zip(decoded.hops, counts):
        if hop.exact:
            assert hop.retx_count == c
