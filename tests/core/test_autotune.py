"""Tests for automatic aggregation-threshold (K) selection."""

import numpy as np
import pytest

from repro.core.autotune import (
    aggregation_cost_bits_per_hop,
    choose_aggregation_threshold,
)
from repro.core.config import DophyConfig
from repro.core.dophy import DophySystem
from repro.net.link import uniform_loss_assigner
from repro.net.routing import RoutingConfig
from repro.net.simulation import CollectionSimulation, SimulationConfig
from repro.net.topology import line_topology


def geometric_histogram(loss, max_count, scale=10_000):
    probs = [(1 - loss) * loss**c for c in range(max_count + 1)]
    return [p * scale for p in probs]


class TestCostModel:
    def test_cost_components_tradeoff(self):
        """Bigger K costs dissemination; smaller K costs escape extras."""
        hist = geometric_histogram(0.4, 30)
        low_traffic = dict(num_nodes=100, hops_per_update=200.0)
        cost_small = aggregation_cost_bits_per_hop(hist, 1, **low_traffic)
        cost_big = aggregation_cost_bits_per_hop(hist, 30, **low_traffic)
        # With little traffic per update, big tables dominate.
        assert cost_big > cost_small

    def test_heavy_traffic_amortizes_tables(self):
        hist = geometric_histogram(0.5, 30)
        heavy = dict(num_nodes=100, hops_per_update=1e7)
        # With amortization nearly free, larger K is never much worse.
        cost_small = aggregation_cost_bits_per_hop(hist, 1, **heavy)
        cost_big = aggregation_cost_bits_per_hop(hist, 10, **heavy)
        assert cost_big <= cost_small  # escapes cost more than bigger alphabet

    def test_validation(self):
        hist = geometric_histogram(0.2, 10)
        with pytest.raises(ValueError):
            aggregation_cost_bits_per_hop(hist, 0, num_nodes=10, hops_per_update=10)
        with pytest.raises(ValueError):
            aggregation_cost_bits_per_hop(hist, 11, num_nodes=10, hops_per_update=10)
        with pytest.raises(ValueError):
            aggregation_cost_bits_per_hop(hist, 2, num_nodes=10, hops_per_update=0)


class TestChooseThreshold:
    def test_good_links_small_k(self):
        """Near-zero counts: a tiny alphabet suffices."""
        hist = geometric_histogram(0.05, 30)
        k = choose_aggregation_threshold(
            hist, max_count=30, num_nodes=100, hops_per_update=2000.0
        )
        assert k <= 3

    def test_lossy_links_larger_k(self):
        hist = geometric_histogram(0.6, 30)
        k_lossy = choose_aggregation_threshold(
            hist, max_count=30, num_nodes=100, hops_per_update=50_000.0
        )
        hist_good = geometric_histogram(0.05, 30)
        k_good = choose_aggregation_threshold(
            hist_good, max_count=30, num_nodes=100, hops_per_update=50_000.0
        )
        assert k_lossy > k_good

    def test_light_traffic_shrinks_k(self):
        hist = geometric_histogram(0.5, 30)
        k_light = choose_aggregation_threshold(
            hist, max_count=30, num_nodes=200, hops_per_update=100.0
        )
        k_heavy = choose_aggregation_threshold(
            hist, max_count=30, num_nodes=200, hops_per_update=1e6
        )
        assert k_light <= k_heavy

    def test_histogram_length_validated(self):
        with pytest.raises(ValueError):
            choose_aggregation_threshold(
                [1.0, 2.0], max_count=30, num_nodes=10, hops_per_update=10.0
            )


class TestAutoAggregationEndToEnd:
    def run_system(self, auto, loss_lo=0.02, loss_hi=0.08):
        dophy = DophySystem(
            DophyConfig(
                aggregation_threshold=8,  # deliberately oversized seed
                auto_aggregation=auto,
                model_update_period=40.0,
                path_encoding="assumed",
            )
        )
        sim = CollectionSimulation(
            line_topology(6),
            seed=131,
            config=SimulationConfig(
                duration=400.0, traffic_period=2.0,
                routing=RoutingConfig(etx_noise_std=0.0),
            ),
            link_assigner=uniform_loss_assigner(loss_lo, loss_hi),
            observers=[dophy],
        )
        result = sim.run()
        return dophy, result

    def test_auto_adapts_k_and_decodes(self):
        dophy, result = self.run_system(auto=True)
        report = dophy.report()
        assert report.decode_failures == 0
        assert report.packets_decoded == result.ground_truth.packets_delivered
        # On near-perfect links the tuner shrinks the oversized seed K.
        final_k = dophy.models.symbol_set_for(
            dophy.models.current_epoch
        ).aggregation_threshold
        assert final_k < 8

    def test_auto_reduces_total_overhead(self):
        auto_dophy, _ = self.run_system(auto=True)
        fixed_dophy, _ = self.run_system(auto=False)
        assert (
            auto_dophy.report().total_overhead_bits
            < fixed_dophy.report().total_overhead_bits
        )

    def test_estimates_unaffected_by_auto(self):
        auto_dophy, _ = self.run_system(auto=True)
        fixed_dophy, _ = self.run_system(auto=False)
        a = auto_dophy.report().estimates
        b = fixed_dophy.report().estimates
        assert set(a) == set(b)
        for link in a:
            assert a[link].loss == pytest.approx(b[link].loss, abs=1e-12)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DophyConfig(auto_aggregation=True, model_update_period=None)
        with pytest.raises(ValueError):
            DophyConfig(auto_aggregation=True, aggregation_threshold=None)
