"""Fuzz tests: corrupted annotations must never crash the sink.

A real sink receives bit-flipped, truncated and garbage payloads
(CRC-escaping corruption happens). The contract: :func:`decode_annotation`
either raises :class:`AnnotationDecodeError` or returns a structurally
valid :class:`DecodedAnnotation` — never an unhandled exception, never a
hang, and never a decoded hop with an out-of-range count.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annotation import AnnotationCodec
from repro.core.config import DophyConfig
from repro.core.decoder import (
    DECODE_FAILURE_CAUSES,
    AnnotationDecodeError,
    decode_annotation,
)
from repro.core.model import ModelManager
from repro.core.path_codec import PathRankModel
from repro.core.symbols import SymbolSet
from repro.net.topology import grid_topology


def make_codec(mode="explicit", num_nodes=16, escape_mode="exact"):
    cfg = DophyConfig(path_encoding=mode, escape_mode=escape_mode)
    ss = SymbolSet(cfg.max_count, cfg.aggregation_threshold)
    mm = ModelManager(ss, num_nodes_for_dissemination=num_nodes)
    topo = grid_topology(4, 4, diagonal=True)
    path_model = PathRankModel(topo) if mode == "compressed" else None
    return AnnotationCodec(cfg, mm, num_nodes, path_model), topo


def checked_decode(codec, data, bits, origin=15, sink=0):
    """Decode; assert the error/valid-result contract either way."""
    try:
        decoded = decode_annotation(data, bits, codec, origin=origin, sink=sink)
    except AnnotationDecodeError as exc:
        # Every failure is attributed, and any salvageable prefix is
        # structurally sound (one more path node than hops).
        assert exc.cause in DECODE_FAILURE_CAUSES
        if exc.partial_path:
            assert len(exc.partial_path) == len(exc.partial_hops) + 1
        return None
    for hop in decoded.hops:
        lo, hi = hop.retx_bounds
        assert 0 <= lo <= hi <= codec.symbol_set.max_count
        if hop.exact:
            assert lo == hop.retx_count == hi
    assert len(decoded.path) == len(decoded.hops) + 1
    return decoded


def flip_bit(data: bytes, index: int) -> bytes:
    out = bytearray(data)
    out[index // 8] ^= 1 << (7 - index % 8)
    return bytes(out)


class TestBitFlips:
    @pytest.mark.parametrize("mode", ["explicit", "compressed"])
    def test_every_single_bit_flip_is_handled(self, mode):
        codec, topo = make_codec(mode)
        ann = codec.new_annotation()
        path = [15, 10, 5, 0]
        for s, r, c in zip(path, path[1:], [0, 7, 2]):
            codec.annotate_hop(ann, s, r, c)
        data, bits = codec.serialize(ann)
        for i in range(bits):
            checked_decode(codec, flip_bit(data, i), bits)

    def test_uncorrupted_still_decodes_exactly(self):
        codec, _ = make_codec("explicit")
        ann = codec.new_annotation()
        for s, r, c in zip([15, 10, 5], [10, 5, 0], [1, 0, 4]):
            codec.annotate_hop(ann, s, r, c)
        data, bits = codec.serialize(ann)
        decoded = checked_decode(codec, data, bits)
        assert decoded is not None
        assert [h.retx_count for h in decoded.hops] == [1, 0, 4]


@settings(max_examples=200, deadline=None)
@given(payload=st.binary(min_size=0, max_size=40), data=st.data())
def test_property_random_garbage_never_crashes(payload, data):
    codec, _ = make_codec(data.draw(st.sampled_from(["explicit", "compressed"])))
    bits = data.draw(st.integers(min_value=0, max_value=8 * len(payload)))
    checked_decode(codec, payload, bits)


@settings(max_examples=150, deadline=None)
@given(data=st.data())
def test_property_multibit_corruption_never_crashes(data):
    """Random multi-bit corruption across path modes and escape modes.

    Counts above the aggregation threshold force escape extensions, so
    the exact-mode bypass-gamma section is inside the corrupted region.
    """
    mode = data.draw(st.sampled_from(["explicit", "compressed"]))
    escape = data.draw(st.sampled_from(["exact", "censored"]))
    codec, _ = make_codec(mode, escape_mode=escape)
    ann = codec.new_annotation()
    path = [15, 10, 5, 0]
    for s, r in zip(path, path[1:]):
        codec.annotate_hop(ann, s, r, data.draw(st.integers(0, 30)))
    payload, bits = codec.serialize(ann)
    n_flips = data.draw(st.integers(min_value=2, max_value=min(12, bits)))
    positions = data.draw(
        st.lists(
            st.integers(0, bits - 1),
            min_size=n_flips,
            max_size=n_flips,
            unique=True,
        )
    )
    for i in positions:
        payload = flip_bit(payload, i)
    checked_decode(codec, payload, bits)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_property_truncations_never_crash(data):
    codec, _ = make_codec("explicit")
    ann = codec.new_annotation()
    hop_count = data.draw(st.integers(min_value=1, max_value=6))
    prev = 15
    for _ in range(hop_count - 1):
        nxt = data.draw(st.integers(min_value=1, max_value=14))
        codec.annotate_hop(ann, prev, nxt, data.draw(st.integers(0, 30)))
        prev = nxt
    codec.annotate_hop(ann, prev, 0, data.draw(st.integers(0, 30)))
    payload, bits = codec.serialize(ann)
    keep = data.draw(st.integers(min_value=0, max_value=bits))
    checked_decode(codec, payload, keep)
