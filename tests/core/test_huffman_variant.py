"""Tests for the Dophy-with-Huffman ablation variant."""

import pytest

from repro.core.config import DophyConfig
from repro.core.dophy import DophySystem
from repro.core.huffman_variant import HuffmanDophyVariant
from repro.net.link import uniform_loss_assigner
from repro.net.routing import RoutingConfig
from repro.net.simulation import CollectionSimulation, SimulationConfig
from repro.net.topology import line_topology


def run_both(seed=21, loss_lo=0.02, loss_hi=0.1, duration=250.0, **config_kw):
    config_kw.setdefault("path_encoding", "assumed")
    dophy = DophySystem(DophyConfig(**config_kw))
    huff = HuffmanDophyVariant(DophyConfig(**config_kw))
    sim = CollectionSimulation(
        line_topology(9),
        seed=seed,
        config=SimulationConfig(
            duration=duration, traffic_period=2.0,
            routing=RoutingConfig(etx_noise_std=0.0),
        ),
        link_assigner=uniform_loss_assigner(loss_lo, loss_hi),
        observers=[dophy, huff],
    )
    result = sim.run()
    return dophy.report(), huff.report(), result


class TestHuffmanVariant:
    def test_same_estimates_as_dophy(self):
        d, h, _ = run_both()
        assert set(d.estimates) == set(h.estimates)
        for link in d.estimates:
            assert d.estimates[link].loss == pytest.approx(
                h.estimates[link].loss, abs=1e-12
            )

    def test_arithmetic_beats_huffman_on_good_links(self):
        """Sub-1-bit symbols: the structural gap the T1 bench quantifies."""
        d, h, _ = run_both(loss_lo=0.01, loss_hi=0.06)
        assert d.mean_bits_per_hop < h.mean_bits_per_hop

    def test_huffman_close_on_lossier_links(self):
        """At higher entropy, the prefix-code floor stops binding."""
        d, h, _ = run_both(loss_lo=0.3, loss_hi=0.5)
        assert h.mean_bits_per_hop < d.mean_bits_per_hop * 1.25

    def test_model_updates_refresh_codebook(self):
        _, h, _ = run_both(model_update_period=50.0)
        assert h.model_updates >= 3
        assert h.dissemination_bits > 0

    def test_compressed_paths_rejected(self):
        with pytest.raises(ValueError):
            HuffmanDophyVariant(DophyConfig(path_encoding="compressed"))

    def test_censored_mode_feeds_estimator(self):
        d, h, _ = run_both(
            aggregation_threshold=1, escape_mode="censored",
            loss_lo=0.3, loss_hi=0.5,
        )
        # Same censoring on both sides -> same estimates.
        for link in d.estimates:
            assert d.estimates[link].loss == pytest.approx(
                h.estimates[link].loss, abs=1e-12
            )

    def test_report_before_attach(self):
        with pytest.raises(RuntimeError):
            HuffmanDophyVariant().report()
