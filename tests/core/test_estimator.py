"""Statistical tests for the per-link loss MLE."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decoder import DecodedHop
from repro.core.estimator import PerLinkEstimator

LINK = (3, 1)


def geometric_attempts(rng, loss, n, max_attempts):
    """Draw first-success attempts conditioned on success within the cap."""
    out = []
    while len(out) < n:
        a = 1
        while rng.random() < loss:
            a += 1
            if a > max_attempts:
                break
        if a <= max_attempts:
            out.append(a)
    return out


class TestExactSamples:
    @pytest.mark.parametrize("loss", [0.05, 0.2, 0.5, 0.8])
    def test_mle_recovers_loss(self, loss):
        rng = np.random.default_rng(int(loss * 100))
        A = 31
        est = PerLinkEstimator(max_attempts=A)
        for a in geometric_attempts(rng, loss, 3000, A):
            est.add_exact(LINK, a - 1)
        result = est.estimate(LINK)
        assert result is not None
        assert abs(result.loss - loss) < 0.03

    def test_all_zero_counts_gives_small_loss(self):
        est = PerLinkEstimator(max_attempts=31)
        for _ in range(200):
            est.add_exact(LINK, 0)
        result = est.estimate(LINK)
        assert 0.0 < result.loss < 0.01
        lo, hi = result.confidence_interval()
        assert lo == 0.0 and hi < 0.1

    def test_no_evidence_returns_none(self):
        est = PerLinkEstimator(max_attempts=31)
        assert est.estimate(LINK) is None
        assert est.estimates() == {}

    def test_stderr_shrinks_with_samples(self):
        rng = np.random.default_rng(5)
        def stderr(n):
            est = PerLinkEstimator(max_attempts=31)
            for a in geometric_attempts(rng, 0.3, n, 31):
                est.add_exact(LINK, a - 1)
            return est.estimate(LINK).stderr

        assert stderr(2000) < stderr(50)

    def test_confidence_interval_covers_truth_mostly(self):
        rng = np.random.default_rng(11)
        covered = 0
        runs = 60
        for _ in range(runs):
            est = PerLinkEstimator(max_attempts=31)
            for a in geometric_attempts(rng, 0.3, 150, 31):
                est.add_exact(LINK, a - 1)
            lo, hi = est.estimate(LINK).confidence_interval()
            if lo <= 0.3 <= hi:
                covered += 1
        assert covered / runs > 0.85

    def test_out_of_range_rejected(self):
        est = PerLinkEstimator(max_attempts=5)
        with pytest.raises(ValueError):
            est.add_exact(LINK, 5)  # attempt 6 > cap
        with pytest.raises(ValueError):
            est.add_exact(LINK, -1)


class TestTruncationCorrection:
    def test_correction_removes_bias_on_bad_link(self):
        """With a tight retry cap, uncorrected MLE underestimates loss."""
        rng = np.random.default_rng(7)
        loss = 0.7
        A = 5
        attempts = geometric_attempts(rng, loss, 4000, A)
        corrected = PerLinkEstimator(max_attempts=A, truncation_correction=True)
        uncorrected = PerLinkEstimator(max_attempts=A, truncation_correction=False)
        for a in attempts:
            corrected.add_exact(LINK, a - 1)
            uncorrected.add_exact(LINK, a - 1)
        err_corrected = abs(corrected.estimate(LINK).loss - loss)
        err_uncorrected = abs(uncorrected.estimate(LINK).loss - loss)
        assert err_corrected < err_uncorrected
        assert err_corrected < 0.05
        assert uncorrected.estimate(LINK).loss < loss  # biased downward

    def test_correction_negligible_on_good_link(self):
        rng = np.random.default_rng(8)
        attempts = geometric_attempts(rng, 0.1, 2000, 31)
        a_est = PerLinkEstimator(max_attempts=31, truncation_correction=True)
        b_est = PerLinkEstimator(max_attempts=31, truncation_correction=False)
        for a in attempts:
            a_est.add_exact(LINK, a - 1)
            b_est.add_exact(LINK, a - 1)
        assert abs(a_est.estimate(LINK).loss - b_est.estimate(LINK).loss) < 0.005


class TestCensoredSamples:
    def test_censored_only_still_estimates(self):
        """'count >= K' observations alone pin down the loss reasonably."""
        rng = np.random.default_rng(9)
        loss, A, K = 0.5, 31, 2
        est = PerLinkEstimator(max_attempts=A)
        for a in geometric_attempts(rng, loss, 4000, A):
            c = a - 1
            if c >= K:
                est.add_censored(LINK, K, A - 1)
            else:
                est.add_exact(LINK, c)
        result = est.estimate(LINK)
        assert abs(result.loss - loss) < 0.04
        assert result.n_censored > 0

    def test_censoring_increases_uncertainty(self):
        rng = np.random.default_rng(10)
        loss, A, K = 0.4, 31, 1
        exact = PerLinkEstimator(max_attempts=A)
        censored = PerLinkEstimator(max_attempts=A)
        for a in geometric_attempts(rng, loss, 1500, A):
            c = a - 1
            exact.add_exact(LINK, c)
            if c >= K:
                censored.add_censored(LINK, K, A - 1)
            else:
                censored.add_exact(LINK, c)
        assert censored.estimate(LINK).stderr >= exact.estimate(LINK).stderr

    def test_invalid_censored_bounds(self):
        est = PerLinkEstimator(max_attempts=10)
        with pytest.raises(ValueError):
            est.add_censored(LINK, 5, 3)
        with pytest.raises(ValueError):
            est.add_censored(LINK, 0, 99)


class TestNaiveEstimator:
    def test_naive_matches_mle_without_truncation_pressure(self):
        rng = np.random.default_rng(12)
        est = PerLinkEstimator(max_attempts=101)
        for a in geometric_attempts(rng, 0.3, 3000, 101):
            est.add_exact(LINK, a - 1)
        assert abs(est.naive_estimate(LINK) - est.estimate(LINK).loss) < 0.01

    def test_naive_biased_under_truncation(self):
        rng = np.random.default_rng(13)
        loss, A = 0.7, 4
        est = PerLinkEstimator(max_attempts=A)
        for a in geometric_attempts(rng, loss, 4000, A):
            est.add_exact(LINK, a - 1)
        assert est.naive_estimate(LINK) < loss - 0.1
        assert abs(est.estimate(LINK).loss - loss) < 0.05

    def test_naive_none_without_data(self):
        est = PerLinkEstimator(max_attempts=10)
        assert est.naive_estimate(LINK) is None


class TestMultiLink:
    def test_links_independent(self):
        rng = np.random.default_rng(14)
        est = PerLinkEstimator(max_attempts=31)
        losses = {(1, 0): 0.1, (2, 1): 0.4, (3, 2): 0.7}
        for link, loss in losses.items():
            for a in geometric_attempts(rng, loss, 2000, 31):
                est.add_exact(link, a - 1)
        results = est.estimates()
        assert set(results) == set(losses)
        for link, loss in losses.items():
            assert abs(results[link].loss - loss) < 0.04

    def test_merge(self):
        rng = np.random.default_rng(15)
        a = PerLinkEstimator(max_attempts=31)
        b = PerLinkEstimator(max_attempts=31)
        for x in geometric_attempts(rng, 0.3, 500, 31):
            a.add_exact(LINK, x - 1)
        for x in geometric_attempts(rng, 0.3, 500, 31):
            b.add_exact(LINK, x - 1)
        a.merge(b)
        assert a.n_samples(LINK) == 1000
        assert abs(a.estimate(LINK).loss - 0.3) < 0.05

    def test_merge_incompatible(self):
        with pytest.raises(ValueError):
            PerLinkEstimator(max_attempts=5).merge(PerLinkEstimator(max_attempts=6))

    def test_merge_truncation_mismatch(self):
        """Pooling evidence across different likelihoods must be rejected."""
        a = PerLinkEstimator(max_attempts=5, truncation_correction=True)
        b = PerLinkEstimator(max_attempts=5, truncation_correction=False)
        b.add_exact(LINK, 2)
        with pytest.raises(ValueError):
            a.merge(b)
        assert a.n_samples(LINK) == 0  # nothing was folded in


class TestHopClamping:
    def test_out_of_range_censored_hop_clamped_not_raised(self):
        """A corrupted censored hop is clamped into range so the rest of
        the annotation's hops still land."""
        est = PerLinkEstimator(max_attempts=4)
        hops = [
            DecodedHop((1, 0), None, (2, 9)),  # hi beyond the retry cap
            DecodedHop((2, 1), 1, (1, 1)),  # must survive the bad hop above
        ]
        est.add_hops(hops)
        assert est.n_samples((1, 0)) == 1
        assert est.n_samples((2, 1)) == 1
        # Clamped to [2, 3] in retx space = attempts (3, 4).
        assert est._data[(1, 0)].censored == {(3, 4): 1}


class TestValidation:
    def test_max_attempts_positive(self):
        with pytest.raises(ValueError):
            PerLinkEstimator(max_attempts=0)


@settings(max_examples=20, deadline=None)
@given(
    loss=st.floats(min_value=0.02, max_value=0.85),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_mle_consistent(loss, seed):
    """For any loss ratio, the MLE lands near the truth with enough samples."""
    rng = np.random.default_rng(seed)
    A = 31
    est = PerLinkEstimator(max_attempts=A)
    for a in geometric_attempts(rng, loss, 1200, A):
        est.add_exact(LINK, a - 1)
    assert abs(est.estimate(LINK).loss - loss) < 0.08
