"""Cross-cutting invariants over full simulation runs.

These exercise the whole stack at once — simulator, routing, MAC, Dophy
annotation pipeline, baselines — and check conservation laws and
consistency properties that no single-module test can see.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bayes import BayesianLinkEstimator
from repro.core.config import DophyConfig
from repro.core.dophy import DophySystem
from repro.core.windowed import SlidingLinkEstimator
from repro.net.link import uniform_loss_assigner
from repro.net.mac import MacConfig
from repro.net.routing import RoutingConfig
from repro.net.simulation import CollectionSimulation, SimulationConfig
from repro.net.topology import grid_topology, random_geometric_topology
from repro.tomography.em import EMTomography
from repro.tomography.mle_tree import TreeRatioTomography
from repro.tomography.path_measurement import PathMeasurement


def heavy_run(seed, *, duration=200.0, observers=(), max_retries=2, noise=0.6):
    topo = random_geometric_topology(35, seed=seed)
    sim = CollectionSimulation(
        topo,
        seed=seed,
        config=SimulationConfig(
            duration=duration,
            traffic_period=3.0,
            mac=MacConfig(max_retries=max_retries),
            routing=RoutingConfig(etx_noise_std=noise, parent_switch_threshold=0.1),
        ),
        link_assigner=uniform_loss_assigner(0.05, 0.4),
        observers=list(observers),
    )
    return sim.run()


class TestConservationLaws:
    def test_packet_accounting(self):
        result = heavy_run(seed=1)
        gt = result.ground_truth
        in_flight = sum(
            1 for p in result.packets if not p.delivered and not p.dropped
        )
        assert gt.packets_generated == gt.packets_delivered + gt.packets_dropped + in_flight
        assert in_flight <= 5  # grace period drains nearly everything

    def test_hop_records_consistent_with_outcome(self):
        result = heavy_run(seed=2)
        for p in result.packets:
            if p.delivered:
                assert all(h.delivered for h in p.hops)
                assert p.path[-1] == 0
            if p.dropped and p.drop_reason == "retries":
                assert p.hops and not p.hops[-1].delivered

    def test_link_usage_matches_packet_hops(self):
        result = heavy_run(seed=3)
        from collections import Counter

        from_packets = Counter()
        for p in result.packets:
            for h in p.hops:
                from_packets[h.link] += 1
        for link, usage in result.ground_truth.link_usage.items():
            assert usage.exchanges == from_packets[link]

    def test_frames_sent_ge_exchanges(self):
        result = heavy_run(seed=4)
        for usage in result.ground_truth.link_usage.values():
            assert usage.frames_sent >= usage.exchanges
            assert usage.received <= usage.exchanges


class TestMultiObserverConsistency:
    def test_observers_do_not_perturb_the_run(self):
        """Attaching observers never changes what the network does."""
        def signature(observers):
            result = heavy_run(seed=5, observers=observers)
            return (
                result.ground_truth.packets_generated,
                result.ground_truth.packets_delivered,
                result.routing.total_parent_changes,
                tuple(sorted(result.ground_truth.true_loss_map().items())),
            )

        bare = signature([])
        loaded = signature(
            [DophySystem(), PathMeasurement(), TreeRatioTomography(), EMTomography()]
        )
        assert bare == loaded

    def test_all_annotation_modes_agree_on_evidence(self):
        reports = {}
        for mode in ["explicit", "compressed", "assumed"]:
            dophy = DophySystem(DophyConfig(path_encoding=mode))
            heavy_run(seed=6, observers=[dophy])
            reports[mode] = dophy.report()
        base = reports["explicit"].estimates
        for mode in ["compressed", "assumed"]:
            other = reports[mode].estimates
            assert set(other) == set(base)
            for link in base:
                assert other[link].loss == pytest.approx(base[link].loss, abs=1e-12)
                assert other[link].n_samples == base[link].n_samples

    def test_estimator_variants_consistent_from_one_run(self):
        """MLE, Bayesian and sliding-window estimators fed by the same
        decode stream agree on well-sampled links."""
        bayes = BayesianLinkEstimator(max_attempts=3)
        sliding = SlidingLinkEstimator(max_attempts=3, window=10_000.0)
        dophy = DophySystem(DophyConfig())
        sim_topo = random_geometric_topology(35, seed=7)
        sim = CollectionSimulation(
            sim_topo,
            seed=7,
            config=SimulationConfig(
                duration=400.0,
                traffic_period=3.0,
                mac=MacConfig(max_retries=2),
                routing=RoutingConfig(etx_noise_std=0.6, parent_switch_threshold=0.1),
            ),
            link_assigner=uniform_loss_assigner(0.05, 0.4),
            observers=[dophy],
        )
        dophy.add_decode_listener(bayes.add_decoded)
        dophy.add_decode_listener(sliding.add_decoded)
        sim.run()
        mle = dophy.report().estimates
        for link, est in mle.items():
            if est.n_samples < 200:
                continue
            b = bayes.estimate(link)
            s = sliding.estimate(link, now=10_000.0)
            assert b is not None and s is not None
            assert abs(b.posterior_mean - est.loss) < 0.03
            assert abs(s.loss - est.loss) < 0.02


class TestDecodabilityUnderStress:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        mode=st.sampled_from(["explicit", "compressed"]),
        k=st.one_of(st.none(), st.integers(min_value=1, max_value=6)),
        classes=st.integers(min_value=1, max_value=3),
    )
    def test_property_every_delivered_packet_decodes(self, seed, mode, k, classes):
        """Across random configs, Dophy never fails to decode a delivered
        annotation, and decodes exactly as many as were delivered."""
        dophy = DophySystem(
            DophyConfig(
                path_encoding=mode,
                aggregation_threshold=k,
                link_classes=classes,
                model_update_period=40.0,
            )
        )
        topo = grid_topology(4, 4, diagonal=True)
        sim = CollectionSimulation(
            topo,
            seed=seed,
            config=SimulationConfig(
                duration=120.0,
                traffic_period=3.0,
                mac=MacConfig(max_retries=5),
                routing=RoutingConfig(etx_noise_std=0.7, parent_switch_threshold=0.0),
            ),
            link_assigner=uniform_loss_assigner(0.05, 0.45),
            observers=[dophy],
        )
        result = sim.run()
        report = dophy.report()
        assert report.decode_failures == 0
        assert report.packets_decoded == result.ground_truth.packets_delivered
