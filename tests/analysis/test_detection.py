"""Tests for bad-link detection metrics."""

import pytest

from repro.analysis.detection import (
    DetectionReport,
    bad_links_from_truth,
    detection_metrics,
)

TRUTH = {(1, 0): 0.05, (2, 1): 0.45, (3, 2): 0.6, (4, 3): 0.1}


class TestBadLinksFromTruth:
    def test_threshold(self):
        assert bad_links_from_truth(TRUTH, 0.3) == {(2, 1), (3, 2)}
        assert bad_links_from_truth(TRUTH, 0.99) == set()

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            bad_links_from_truth(TRUTH, 1.5)


class TestDetectionMetrics:
    def test_perfect_detection(self):
        report = detection_metrics({(2, 1), (3, 2)}, TRUTH, loss_threshold=0.3)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0
        assert report.true_negatives == 2

    def test_miss_and_false_alarm(self):
        report = detection_metrics({(2, 1), (1, 0)}, TRUTH, loss_threshold=0.3)
        assert report.true_positives == 1
        assert report.false_positives == 1
        assert report.false_negatives == 1
        assert report.precision == 0.5
        assert report.recall == 0.5

    def test_empty_flags(self):
        report = detection_metrics(set(), TRUTH, loss_threshold=0.3)
        assert report.recall == 0.0
        assert report.precision == 1.0  # vacuous: no claims, none wrong
        assert report.f1 == 0.0

    def test_no_bad_links_vacuous_recall(self):
        report = detection_metrics(set(), TRUTH, loss_threshold=0.99)
        assert report.recall == 1.0
        assert report.accuracy == 1.0

    def test_flag_outside_universe_is_false_positive(self):
        report = detection_metrics({(9, 9)}, TRUTH, loss_threshold=0.3)
        assert report.false_positives == 1

    def test_explicit_universe(self):
        report = detection_metrics(
            {(2, 1)}, TRUTH, loss_threshold=0.3, universe=[(2, 1), (3, 2)]
        )
        assert report.true_negatives == 0
        assert report.false_negatives == 1

    def test_accuracy(self):
        report = DetectionReport(2, 1, 1, 6)
        assert report.accuracy == pytest.approx(0.8)
