"""Tests for accuracy metrics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.metrics import (
    compare_estimates,
    error_cdf,
    mean_absolute_error,
    quantile_error,
    root_mean_square_error,
)

TRUTH = {(1, 0): 0.1, (2, 1): 0.3, (3, 2): 0.5}


class TestBasicMetrics:
    def test_perfect_estimates(self):
        assert mean_absolute_error(dict(TRUTH), TRUTH) == 0.0
        assert root_mean_square_error(dict(TRUTH), TRUTH) == 0.0

    def test_known_errors(self):
        est = {(1, 0): 0.2, (2, 1): 0.3, (3, 2): 0.4}
        assert mean_absolute_error(est, TRUTH) == pytest.approx(0.2 / 3)
        assert root_mean_square_error(est, TRUTH) == pytest.approx(
            math.sqrt((0.01 + 0 + 0.01) / 3)
        )

    def test_disjoint_links_give_none(self):
        assert mean_absolute_error({(9, 9): 0.5}, TRUTH) is None
        assert root_mean_square_error({}, TRUTH) is None

    def test_partial_overlap_uses_common_links_only(self):
        est = {(1, 0): 0.1, (9, 9): 0.99}
        assert mean_absolute_error(est, TRUTH) == 0.0

    def test_quantile(self):
        est = {(1, 0): 0.1, (2, 1): 0.4, (3, 2): 0.8}
        assert quantile_error(est, TRUTH, 1.0) == pytest.approx(0.3)
        with pytest.raises(ValueError):
            quantile_error(est, TRUTH, 1.5)

    def test_error_cdf(self):
        est = {(1, 0): 0.11, (2, 1): 0.35, (3, 2): 0.9}
        cdf = error_cdf(est, TRUTH, points=(0.02, 0.1, 0.5))
        assert cdf[0.02] == pytest.approx(1 / 3)
        assert cdf[0.1] == pytest.approx(2 / 3)
        assert cdf[0.5] == 1.0

    def test_error_cdf_empty(self):
        cdf = error_cdf({}, TRUTH, points=(0.1,))
        assert math.isnan(cdf[0.1])


class TestCompareEstimates:
    def test_full_report(self):
        est = {(1, 0): 0.15, (2, 1): 0.3}
        report = compare_estimates(est, TRUTH, method="x")
        assert report.method == "x"
        assert report.n_links_compared == 2
        assert report.n_links_truth == 3
        assert report.coverage == pytest.approx(2 / 3)
        assert report.mae == pytest.approx(0.025)
        assert report.max_error == pytest.approx(0.05)
        assert report.per_link_errors[(1, 0)] == pytest.approx(0.05)

    def test_min_support_filters(self):
        est = {(1, 0): 0.9, (2, 1): 0.3}
        support = {(1, 0): 2, (2, 1): 100}
        report = compare_estimates(est, TRUTH, min_support=10, support=support)
        assert report.n_links_compared == 1
        assert report.mae == 0.0  # the badly-supported wild estimate excluded

    def test_empty_report(self):
        report = compare_estimates({}, TRUTH)
        assert report.mae is None and report.rmse is None
        assert report.coverage == 0.0

    def test_empty_truth(self):
        report = compare_estimates({(1, 0): 0.5}, {})
        assert report.coverage == 0.0
        assert report.n_links_compared == 0


@given(
    st.dictionaries(
        st.tuples(st.integers(0, 20), st.integers(0, 20)),
        st.floats(min_value=0, max_value=1),
        min_size=1,
        max_size=15,
    ),
    st.floats(min_value=0, max_value=0.5),
)
def test_property_mae_bounds_shift(truth, shift):
    """Shifting every estimate by s yields MAE close to s (clipped at 1)."""
    est = {l: min(1.0, v + shift) for l, v in truth.items()}
    mae = mean_absolute_error(est, truth)
    assert mae <= shift + 1e-12
    rmse = root_mean_square_error(est, truth)
    assert rmse <= shift + 1e-12
    assert rmse >= mae - 1e-12 or math.isclose(rmse, mae)
