"""Tests for the in-run periodic evaluator."""

import pytest

from repro.analysis.timeseries import PeriodicEvaluator
from repro.core.config import DophyConfig
from repro.core.dophy import DophySystem
from repro.core.windowed import SlidingLinkEstimator
from repro.net.link import uniform_loss_assigner
from repro.net.routing import RoutingConfig
from repro.net.simulation import CollectionSimulation, SimulationConfig
from repro.net.topology import line_topology


def run_with_evaluator(period=20.0, duration=120.0, min_support=0, truth_kind="empirical"):
    dophy = DophySystem(DophyConfig())
    evaluator = PeriodicEvaluator(period, min_support=min_support, truth_kind=truth_kind)
    evaluator.add_dophy("dophy", dophy)
    sim = CollectionSimulation(
        line_topology(4),
        seed=11,
        config=SimulationConfig(
            duration=duration, traffic_period=2.0,
            routing=RoutingConfig(etx_noise_std=0.0),
        ),
        link_assigner=uniform_loss_assigner(0.1, 0.3),
        observers=[dophy, evaluator],
    )
    result = sim.run()
    return evaluator, result


class TestPeriodicEvaluator:
    def test_snapshots_on_schedule(self):
        evaluator, _ = run_with_evaluator(period=20.0, duration=120.0)
        curve = evaluator.curve("dophy")
        assert len(curve) >= 5
        times = [t for t, _ in curve]
        assert times == sorted(times)
        assert times[0] == pytest.approx(20.0)

    def test_accuracy_improves_over_time(self):
        # Score against the configured model loss so the curve reflects
        # genuine sampling error (which shrinks with data).
        evaluator, _ = run_with_evaluator(
            period=15.0, duration=400.0, truth_kind="model"
        )
        curve = [(t, mae) for t, mae in evaluator.curve("dophy") if mae is not None]
        early = curve[0][1]
        late = curve[-1][1]
        assert late < early

    def test_final_point(self):
        evaluator, _ = run_with_evaluator()
        point = evaluator.final_point("dophy")
        assert point is not None
        assert point.method == "dophy"
        assert point.links_compared > 0
        assert evaluator.final_point("missing") is None

    def test_custom_source(self):
        evaluator = PeriodicEvaluator(30.0)
        evaluator.add_source("zeros", lambda: {(1, 0): 0.0})
        sim = CollectionSimulation(
            line_topology(3),
            seed=12,
            config=SimulationConfig(duration=90.0, traffic_period=3.0),
            link_assigner=uniform_loss_assigner(0.2, 0.3),
            observers=[evaluator],
        )
        sim.run()
        curve = evaluator.curve("zeros")
        assert curve
        # Constant-zero estimates err by roughly the true loss.
        final_mae = curve[-1][1]
        assert 0.1 < final_mae < 0.35

    def test_duplicate_source_rejected(self):
        evaluator = PeriodicEvaluator(10.0)
        evaluator.add_source("a", dict)
        with pytest.raises(ValueError):
            evaluator.add_source("a", dict)

    def test_duplicate_name_rejected_across_source_kinds(self):
        evaluator = PeriodicEvaluator(10.0)
        evaluator.add_timed_source("a", lambda now: {})
        with pytest.raises(ValueError):
            evaluator.add_source("a", dict)
        with pytest.raises(ValueError):
            evaluator.add_timed_source("a", lambda now: {})

    def test_sliding_source_scored_per_tick(self):
        """add_sliding wires a windowed estimator in: each tick is scored
        with the window ending at that tick."""
        dophy = DophySystem(DophyConfig())
        sliding = SlidingLinkEstimator(max_attempts=31, window=60.0)
        dophy.add_decode_listener(sliding.add_decoded)
        evaluator = PeriodicEvaluator(20.0)
        evaluator.add_dophy("dophy", dophy)
        evaluator.add_sliding("sliding", sliding)
        sim = CollectionSimulation(
            line_topology(4),
            seed=11,
            config=SimulationConfig(
                duration=200.0, traffic_period=2.0,
                routing=RoutingConfig(etx_noise_std=0.0),
            ),
            link_assigner=uniform_loss_assigner(0.1, 0.3),
            observers=[dophy, evaluator],
        )
        sim.run()
        assert evaluator.methods() == ["dophy", "sliding"]
        curve = [(t, mae) for t, mae in evaluator.curve("sliding") if mae is not None]
        assert len(curve) >= 5
        # On a stationary run the windowed MAE tracks the batch MAE.
        final_batch = evaluator.final_point("dophy").mae
        final_sliding = evaluator.final_point("sliding").mae
        assert abs(final_sliding - final_batch) < 0.1

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            PeriodicEvaluator(0.0)

    def test_min_support_filters(self):
        evaluator, _ = run_with_evaluator(min_support=10**9)
        point = evaluator.final_point("dophy")
        assert point.links_compared == 0
        assert point.mae is None

    def test_methods_listing(self):
        evaluator = PeriodicEvaluator(10.0)
        evaluator.add_source("b", dict)
        evaluator.add_source("a", dict)
        assert evaluator.methods() == ["a", "b"]
