"""Tests for radio-energy accounting."""

import pytest

from repro.analysis.energy import RadioEnergyModel, energy_report
from repro.net.link import uniform_loss_assigner
from repro.net.routing import RoutingConfig
from repro.net.simulation import CollectionSimulation, SimulationConfig
from repro.net.topology import line_topology


@pytest.fixture(scope="module")
def run_result():
    sim = CollectionSimulation(
        line_topology(4),
        seed=95,
        config=SimulationConfig(
            duration=120.0, traffic_period=2.0,
            routing=RoutingConfig(etx_noise_std=0.0),
        ),
        link_assigner=uniform_loss_assigner(0.1, 0.3),
    )
    return sim.run()


class TestRadioEnergyModel:
    def test_defaults(self):
        m = RadioEnergyModel()
        assert m.joules_per_link_bit == pytest.approx(0.4e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            RadioEnergyModel(tx_joules_per_bit=0.0)


class TestEnergyReport:
    def test_data_plane_scales_with_frames(self, run_result):
        report = energy_report(run_result, annotation_bits_total=0)
        total_frames = sum(
            u.frames_sent for u in run_result.ground_truth.link_usage.values()
        )
        expected = total_frames * 28 * 8 * 0.4e-6
        assert report.data_joules == pytest.approx(expected)
        assert report.measurement_joules == 0.0
        assert report.overhead_fraction == 0.0

    def test_annotation_bits_scaled_by_retransmissions(self, run_result):
        gt = run_result.ground_truth
        frames = sum(u.frames_sent for u in gt.link_usage.values())
        exchanges = sum(u.exchanges for u in gt.link_usage.values())
        retx_factor = frames / exchanges
        assert retx_factor > 1.0  # lossy links retransmit
        report = energy_report(run_result, annotation_bits_total=10_000)
        assert report.annotation_joules == pytest.approx(
            10_000 * retx_factor * 0.4e-6
        )

    def test_control_bits_charged_once(self, run_result):
        report = energy_report(
            run_result, annotation_bits_total=0, control_bits_total=50_000
        )
        assert report.control_joules == pytest.approx(50_000 * 0.4e-6)

    def test_per_packet_normalization(self, run_result):
        report = energy_report(run_result, annotation_bits_total=8_000)
        delivered = run_result.ground_truth.packets_delivered
        assert report.delivered_packets == delivered
        assert report.microjoules_per_delivered_packet == pytest.approx(
            1e6 * report.measurement_joules / delivered
        )

    def test_overhead_fraction_sane_for_dophy(self, run_result):
        """A ~3-byte annotation on a 28-byte frame is <15% energy overhead."""
        delivered = run_result.ground_truth.packets_delivered
        report = energy_report(
            run_result, annotation_bits_total=delivered * 24
        )
        assert 0.0 < report.overhead_fraction < 0.15

    def test_custom_model_and_frame(self, run_result):
        model = RadioEnergyModel(tx_joules_per_bit=1e-6, rx_joules_per_bit=1e-6)
        report = energy_report(
            run_result,
            annotation_bits_total=0,
            model=model,
            data_frame_bits=100,
        )
        frames = sum(
            u.frames_sent for u in run_result.ground_truth.link_usage.values()
        )
        assert report.data_joules == pytest.approx(frames * 100 * 2e-6)

    def test_validation(self, run_result):
        with pytest.raises(ValueError):
            energy_report(run_result, annotation_bits_total=-1)
