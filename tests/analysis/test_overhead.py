"""Tests for overhead accounting."""

from dataclasses import dataclass, field
from typing import List

import pytest

from repro.analysis.overhead import DEFAULT_FRAME_PAYLOAD_BITS, summarize_overhead


@dataclass
class FakeReport:
    annotation_bits: List[int] = field(default_factory=list)
    annotation_hops: List[int] = field(default_factory=list)


class TestSummarizeOverhead:
    def test_basic_stats(self):
        report = FakeReport(annotation_bits=[10, 20, 30], annotation_hops=[1, 2, 3])
        s = summarize_overhead(report, method="m", control_bits=100)
        assert s.method == "m"
        assert s.packets == 3
        assert s.total_annotation_bits == 60
        assert s.mean_bits_per_packet == pytest.approx(20.0)
        assert s.mean_bits_per_hop == pytest.approx(10.0)
        assert s.control_bits == 100
        assert s.total_bits == 160
        assert s.mean_bytes_per_packet == pytest.approx(2.5)

    def test_frame_fraction(self):
        report = FakeReport(annotation_bits=[56], annotation_hops=[2])
        s = summarize_overhead(report)
        assert s.frame_fraction == pytest.approx(56 / DEFAULT_FRAME_PAYLOAD_BITS)

    def test_p95(self):
        bits = list(range(1, 101))
        report = FakeReport(annotation_bits=bits, annotation_hops=[1] * 100)
        s = summarize_overhead(report)
        assert s.p95_bits_per_packet == pytest.approx(96.0)

    def test_empty_report(self):
        s = summarize_overhead(FakeReport())
        assert s.packets == 0
        assert s.mean_bits_per_packet == 0.0
        assert s.mean_bits_per_hop == 0.0
        assert s.frame_fraction == 0.0

    def test_custom_frame_size(self):
        report = FakeReport(annotation_bits=[50], annotation_hops=[1])
        s = summarize_overhead(report, frame_payload_bits=100)
        assert s.frame_fraction == pytest.approx(0.5)
