"""Every approach spec and every scenario must be dispatchable to a pool
worker: picklable by value-free module references, and runnable inside a
``ParallelRunner(jobs=2)`` pool.

This is the regression net for the old closure-based factories (lambdas
inside ``*_approach`` and ``*_scenario`` bodies) that could never cross
a process boundary.
"""

import pickle

import pytest

from repro.coding.baseline_codes import EliasGammaCode
from repro.core.config import DophyConfig
from repro.exec import ComparisonTask, ParallelRunner
from repro.workloads import (
    bursty_rgg_scenario,
    dophy_approach,
    drifting_line_scenario,
    drifting_rgg_scenario,
    dynamic_rgg_scenario,
    em_approach,
    failing_rgg_scenario,
    huffman_dophy_approach,
    interference_rgg_scenario,
    line_scenario,
    linear_approach,
    path_measurement_approach,
    static_grid_scenario,
    static_rgg_scenario,
    tree_ratio_approach,
)

#: Every public approach constructor, including the non-default variants.
APPROACHES = [
    dophy_approach(),
    dophy_approach(
        "dophy_lossy",
        config=DophyConfig(dissemination_loss=0.3, model_update_period=20.0),
    ),
    huffman_dophy_approach(),
    path_measurement_approach(),
    path_measurement_approach("direct_gamma", EliasGammaCode()),
    path_measurement_approach("direct_assumed", path_encoding="assumed"),
    tree_ratio_approach(),
    linear_approach(),
    em_approach(),
]

APPROACH_IDS = [spec.name for spec in APPROACHES]

#: Every scenario family at miniature scale.
SCENARIOS = [
    ("line", line_scenario(5, duration=40.0)),
    ("static_grid", static_grid_scenario(3, 3, duration=40.0)),
    ("static_rgg", static_rgg_scenario(12, duration=40.0)),
    ("dynamic_rgg", dynamic_rgg_scenario(12, duration=40.0)),
    ("bursty_rgg", bursty_rgg_scenario(12, duration=40.0)),
    ("drifting_rgg", drifting_rgg_scenario(12, duration=40.0)),
    ("drifting_line", drifting_line_scenario(5, duration=40.0)),
    ("failing_rgg", failing_rgg_scenario(12, num_failures=2, duration=40.0)),
    ("interference_rgg", interference_rgg_scenario(12, duration=40.0)),
]

SCENARIO_IDS = [s[0] for s in SCENARIOS]


@pytest.mark.parametrize("spec", APPROACHES, ids=APPROACH_IDS)
def test_approach_spec_pickles_and_still_works(spec):
    clone = pickle.loads(pickle.dumps(spec))
    assert clone.name == spec.name
    observer = clone.factory()
    assert observer is not None
    # A second call must build a fresh observer, not share state.
    assert clone.factory() is not observer


@pytest.mark.parametrize("label,scenario", SCENARIOS, ids=SCENARIO_IDS)
def test_scenario_pickles_and_still_builds(label, scenario):
    clone = pickle.loads(pickle.dumps(scenario))
    sim = clone.make_simulation(3, [])
    assert sim is not None


@pytest.mark.parametrize("spec", APPROACHES, ids=APPROACH_IDS)
def test_every_approach_runs_in_a_pool_worker(spec):
    """The real acceptance test: each spec executes end-to-end inside a
    separate process and ships its row back."""
    task = ComparisonTask(
        scenario=line_scenario(4, duration=30.0), approaches=(spec,), seed=3
    )
    results = ParallelRunner(jobs=2).run_comparisons([task])
    assert list(results[0].rows) == [spec.name]


def test_scenario_matrix_runs_in_a_pool(tmp_path):
    """All scenario families dispatch through one pool in one call."""
    spec = dophy_approach()
    tasks = [
        ComparisonTask(scenario=scenario, approaches=(spec,), seed=5)
        for _, scenario in SCENARIOS
    ]
    runner = ParallelRunner(jobs=2, cache_dir=str(tmp_path))
    results = runner.run_comparisons(tasks)
    assert len(results) == len(SCENARIOS)
    assert runner.stats.executed == len(SCENARIOS)
    serial = ParallelRunner(jobs=1).run_comparisons(tasks)
    assert results == serial
