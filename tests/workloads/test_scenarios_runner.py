"""Tests for scenarios, the comparison runner, and table formatting."""

import pytest

from repro.workloads.runner import (
    dophy_approach,
    em_approach,
    linear_approach,
    path_measurement_approach,
    run_comparison,
    run_replicated,
    tree_ratio_approach,
)
from repro.workloads.scenarios import (
    bursty_rgg_scenario,
    drifting_line_scenario,
    dynamic_rgg_scenario,
    line_scenario,
    static_grid_scenario,
    static_rgg_scenario,
)
from repro.workloads.tables import format_table, format_value


class TestScenarios:
    def test_line_scenario_builds_and_runs(self):
        sc = line_scenario(4, duration=30.0)
        sim = sc.make_simulation(seed=1)
        result = sim.run()
        assert result.ground_truth.packets_generated > 0

    def test_with_config_override(self):
        sc = line_scenario(4).with_config(duration=15.0)
        assert sc.sim_config.duration == 15.0
        # Original untouched (frozen dataclass copy).
        assert line_scenario(4).sim_config.duration == 400.0

    def test_all_factories_produce_named_scenarios(self):
        for sc in [
            line_scenario(5),
            static_grid_scenario(3, 3),
            static_rgg_scenario(20),
            dynamic_rgg_scenario(20, churn_noise=0.5),
            bursty_rgg_scenario(20),
            drifting_line_scenario(5),
        ]:
            assert sc.name
            topo = sc.topology_factory(7)
            assert topo.num_nodes >= 4

    def test_rgg_scenario_seed_controls_topology(self):
        sc = static_rgg_scenario(25)
        a = sc.topology_factory(1).undirected_edges()
        b = sc.topology_factory(2).undirected_edges()
        assert a != b


class TestRunComparison:
    def test_all_approaches_on_one_run(self):
        sc = line_scenario(5, duration=120.0, traffic_period=3.0)
        approaches = [
            dophy_approach(),
            path_measurement_approach(),
            tree_ratio_approach(),
            linear_approach(),
            em_approach(),
        ]
        rows, result = run_comparison(sc, approaches, seed=3)
        assert set(rows) == {"dophy", "direct", "tree_ratio", "linear", "em"}
        for row in rows.values():
            assert row.accuracy.mae is not None
            assert 0.0 <= row.delivery_ratio <= 1.0
        # Annotation approaches report per-packet bits; e2e ones don't.
        assert rows["dophy"].overhead.packets > 0
        assert rows["tree_ratio"].overhead.packets == 0

    def test_dophy_more_accurate_than_e2e_under_dynamics(self):
        sc = dynamic_rgg_scenario(
            25, churn_noise=0.9, duration=250.0, switch_threshold=0.1
        )
        rows, result = run_comparison(
            sc, [dophy_approach(), tree_ratio_approach()], seed=5, min_support=20
        )
        assert result.routing.total_parent_changes > 0
        assert rows["dophy"].accuracy.mae < rows["tree_ratio"].accuracy.mae

    def test_min_support_filters_low_sample_links(self):
        sc = line_scenario(4, duration=60.0)
        rows_all, _ = run_comparison(sc, [dophy_approach()], seed=6, min_support=0)
        rows_flt, _ = run_comparison(sc, [dophy_approach()], seed=6, min_support=10**6)
        assert rows_flt["dophy"].accuracy.n_links_compared == 0
        assert rows_all["dophy"].accuracy.n_links_compared > 0


class TestRunReplicated:
    def test_replication_aggregates(self):
        sc = line_scenario(4, duration=60.0)
        out = run_replicated(
            sc, [dophy_approach()], master_seed=42, replicates=2
        )
        row = out["dophy"]
        assert row.replicates == 2
        assert row.mae_mean >= 0.0
        assert row.mae_std >= 0.0
        assert row.bits_per_hop_mean > 0

    def test_invalid_replicates(self):
        with pytest.raises(ValueError):
            run_replicated(line_scenario(3), [dophy_approach()], master_seed=1, replicates=0)


class TestTables:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(float("nan")) == "-"
        assert format_value(True) == "yes"
        assert format_value(0.123456, precision=3) == "0.123"
        assert format_value(0.0) == "0"
        assert format_value("abc") == "abc"
        assert format_value(123456.0) == "1.235e+05"

    def test_format_table_alignment(self):
        text = format_table(
            ["name", "v1", "v2"],
            [["alpha", 1.5, None], ["b", 22.25, 0.125]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert "alpha" in lines[4]
        assert "-" in lines[4]  # the None cell
        # all rows same width
        assert len({len(l) for l in lines[2:]}) <= 2

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert "a" in text
