"""Scenario-cache contracts: keys, forking, bit-identity, atomicity.

Three contracts pin the cache (DESIGN.md §12.5):

* **keying** — every constructor knob lands in the skeleton key; the
  seed does not (that is what makes cross-seed forking addressable);
* **bit-identity** — a simulation instantiated from a cached or forked
  skeleton is byte-identical to a freshly built one, on both engines;
* **write discipline** — entries are atomic immutable files; corrupt
  entries degrade to misses, never to wrong results.
"""

import pickle

import pytest

from repro.net.link import GilbertElliottLink
from repro.utils.rng import RngRegistry
from repro.workloads.scenario_cache import (
    BuiltScenario,
    ScenarioCache,
    build_scenario,
    fork_built,
    seed_invariant_topology,
)
from repro.workloads.scenarios import (
    bursty_rgg_scenario,
    dynamic_rgg_scenario,
    failing_rgg_scenario,
    interference_rgg_scenario,
    line_scenario,
    static_grid_scenario,
)


def _packet_bytes(sim_result):
    """Canonical bytes of a run's observable packet stream."""
    return pickle.dumps(
        [
            (
                p.origin,
                p.seqno,
                p.created_at,
                p.delivered_at,
                p.dropped_at,
                p.drop_reason,
                tuple(p.hops),
            )
            for p in sim_result.packets
        ]
    ) + pickle.dumps(sim_result.events_processed)


def _run(scenario, seed, cache=None):
    sim = scenario.make_simulation(seed, scenario_cache=cache)
    return _packet_bytes(sim.run())


def _small(**overrides):
    base = dynamic_rgg_scenario(24, duration=40.0, traffic_period=4.0)
    return base.with_config(**overrides) if overrides else base


class TestSkeletonKeys:
    """Satellite: property tests for the cache-key contract."""

    def test_seed_absent_from_key(self, tmp_path):
        """The forking contract: all seeds share one skeleton directory."""
        cache = ScenarioCache(tmp_path)
        scn = _small()
        key = cache.skeleton_key(scn)
        cache.get_or_build(scn, 7)
        cache.get_or_build(scn, 8)
        entries = sorted(p.name for p in cache._skeleton_dir(key).glob("*.pkl"))
        assert entries == ["7.pkl", "8.pkl"]

    @pytest.mark.parametrize(
        "variant_name,variant",
        [
            ("churn_noise", dynamic_rgg_scenario(24, churn_noise=0.9, duration=40.0, traffic_period=4.0)),
            ("duration", _small(duration=41.0)),
            ("traffic_period", _small(traffic_period=5.0)),
            ("engine", _small(engine="array")),
            ("link_class", bursty_rgg_scenario(24, duration=40.0, traffic_period=4.0)),
            ("fault_plan", failing_rgg_scenario(24, duration=40.0, traffic_period=4.0)),
            ("num_nodes", dynamic_rgg_scenario(25, duration=40.0, traffic_period=4.0)),
        ],
    )
    def test_every_knob_lands_in_key(self, tmp_path, variant_name, variant):
        cache = ScenarioCache(tmp_path)
        assert cache.skeleton_key(_small()) != cache.skeleton_key(variant), variant_name

    def test_key_stable_across_instances(self, tmp_path):
        cache = ScenarioCache(tmp_path)
        assert cache.skeleton_key(_small()) == cache.skeleton_key(_small())


class TestApplicability:
    def test_interference_bypassed(self, tmp_path):
        cache = ScenarioCache(tmp_path)
        scn = interference_rgg_scenario(16, duration=30.0)
        assert not cache.applicable(scn)
        # make_simulation silently falls through to a fresh build.
        sim = scn.make_simulation(3, scenario_cache=cache)
        assert sim.run().packets
        assert cache.stats == {"warm": 0, "forked": 0, "cold": 0}

    def test_sanitizer_bypassed(self, tmp_path, monkeypatch):
        from repro.sanitize import hooks

        cache = ScenarioCache(tmp_path)
        monkeypatch.setattr(hooks, "ACTIVE", object())
        assert not cache.applicable(_small())

    def test_plain_scenarios_applicable(self, tmp_path):
        cache = ScenarioCache(tmp_path)
        for scn in (_small(), line_scenario(5), failing_rgg_scenario(16)):
            assert cache.applicable(scn)


class TestBitIdentity:
    """Cold build ≡ warm hit ≡ fork ≡ fresh, per engine."""

    @pytest.mark.parametrize("engine", ["event", "array"])
    def test_cold_warm_fork_fresh(self, tmp_path, engine):
        scn = _small(engine=engine)
        cache = ScenarioCache(tmp_path)
        fresh_a = _run(scn, 11)
        assert _run(scn, 11, cache) == fresh_a  # cold build + store
        assert _run(scn, 11, cache) == fresh_a  # warm hit
        fresh_b = _run(scn, 12)
        # RGG topology is seed-dependent, so a new seed is a cold build
        # (forking would reuse nothing); the rerun is then warm.
        assert _run(scn, 12, cache) == fresh_b
        assert _run(scn, 12, cache) == fresh_b
        assert cache.stats == {"warm": 2, "forked": 0, "cold": 2}

    def test_grid_fork_reuses_topology_object(self, tmp_path):
        scn = static_grid_scenario(4, 4, duration=40.0)
        assert seed_invariant_topology(scn.topology_factory)
        a = build_scenario(scn, 1)
        b = fork_built(a, scn, 2)
        assert b.topology is a.topology
        cache = ScenarioCache(tmp_path)
        fresh = _run(scn, 2)
        cache.get_or_build(scn, 1)
        assert _run(scn, 2, cache) == fresh  # forked from seed 1's skeleton
        assert cache.stats == {"warm": 0, "forked": 1, "cold": 1}

    def test_rgg_fork_rebuilds_topology(self):
        scn = _small()
        assert not seed_invariant_topology(scn.topology_factory)
        a = build_scenario(scn, 1)
        b = fork_built(a, scn, 2)
        assert b.topology is not a.topology

    def test_fork_same_seed_is_identity(self):
        scn = _small()
        a = build_scenario(scn, 5)
        assert fork_built(a, scn, 5) is a

    def test_bursty_fresh_copies_isolate_chain_state(self, tmp_path):
        """Two instantiations of one skeleton must not share GE chains."""
        scn = bursty_rgg_scenario(16, duration=30.0)
        cache = ScenarioCache(tmp_path)
        first = _run(scn, 4, cache)
        built, status = cache.get_or_build(scn, 4)
        assert status == "warm"
        ge = [m for m in built.models.values() if isinstance(m, GilbertElliottLink)]
        assert ge and all(m._in_bad is False for m in ge)  # prototypes pristine
        assert _run(scn, 4, cache) == first


class TestStoreDiscipline:
    def test_corrupt_entry_is_miss_and_removed(self, tmp_path):
        cache = ScenarioCache(tmp_path)
        scn = _small()
        key = cache.skeleton_key(scn)
        cache.get_or_build(scn, 3)
        path = cache._path(key, 3)
        path.write_bytes(b"truncated garbage")
        assert cache.load(key, 3) is None
        assert not path.exists()
        # And the next request degrades to a rebuild, not a failure.
        built, status = cache.get_or_build(scn, 3)
        assert isinstance(built, BuiltScenario) and status == "cold"

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ScenarioCache(tmp_path)
        cache.get_or_build(_small(), 3)
        assert not list(tmp_path.rglob("*.tmp"))

    def test_roundtrip_preserves_skeleton(self, tmp_path):
        cache = ScenarioCache(tmp_path)
        scn = _small()
        key = cache.skeleton_key(scn)
        built, _ = cache.get_or_build(scn, 3)
        loaded = cache.load(key, 3)
        assert loaded is not None
        assert loaded.seed == 3
        assert list(loaded.models) == list(built.models)
        # Bit-exact through the dense all-Bernoulli entry encoding.
        assert all(
            type(a) is type(b) and a.loss == b.loss
            for a, b in zip(built.models.values(), loaded.models.values())
        )
        assert (loaded.routing_warm.etx == built.routing_warm.etx).all()
        assert loaded.routing_warm.parent == built.routing_warm.parent


class TestWarmStateRestore:
    def test_restore_matches_fresh_engine(self):
        """RoutingEngine(warm_state=...) ≡ full construction, field by field."""
        from repro.net.link import Channel
        from repro.net.routing import RoutingEngine
        from repro.net.simulation import DEFAULT_LINK_ASSIGNER

        scn = _small()
        topo = scn.topology_factory(9)
        reg_a = RngRegistry(9)
        chan_a = Channel.build(topo, DEFAULT_LINK_ASSIGNER, reg_a)
        fresh = RoutingEngine(topo, chan_a, reg_a, scn.sim_config.routing)
        warm = fresh.capture_warm_state()

        reg_b = RngRegistry(9)
        chan_b = Channel.build(topo, DEFAULT_LINK_ASSIGNER, reg_b)
        restored = RoutingEngine(
            topo, chan_b, reg_b, scn.sim_config.routing, warm_state=warm
        )
        assert (restored._etx == fresh._etx).all()
        assert restored._parent == fresh._parent
        assert restored._cost == fresh._cost
        assert restored.parent_change_log == []

    def test_restore_rejects_mismatched_topology(self):
        from repro.net.link import Channel
        from repro.net.routing import RoutingEngine
        from repro.net.simulation import DEFAULT_LINK_ASSIGNER

        scn = line_scenario(5)
        topo5 = scn.topology_factory(1)
        topo6 = line_scenario(6).topology_factory(1)
        reg = RngRegistry(1)
        chan = Channel.build(topo5, DEFAULT_LINK_ASSIGNER, reg)
        warm = RoutingEngine(topo5, chan, reg, scn.sim_config.routing).capture_warm_state()
        reg6 = RngRegistry(1)
        chan6 = Channel.build(topo6, DEFAULT_LINK_ASSIGNER, reg6)
        with pytest.raises(ValueError):
            RoutingEngine(
                topo6, chan6, reg6, scn.sim_config.routing, warm_state=warm
            )
