"""Tests for result export (CSV/JSON)."""

import csv
import json

import pytest

from repro.workloads.export import (
    row_to_record,
    rows_to_records,
    write_csv,
    write_json,
)
from repro.workloads.runner import dophy_approach, run_comparison
from repro.workloads.scenarios import line_scenario


@pytest.fixture(scope="module")
def comparison_row():
    sc = line_scenario(4, duration=40.0, traffic_period=3.0)
    rows, _ = run_comparison(sc, [dophy_approach()], seed=61)
    return rows["dophy"]


class TestRecords:
    def test_flattens_all_fields(self, comparison_row):
        record = row_to_record(comparison_row)
        assert record["approach"] == "dophy"
        assert isinstance(record["mae"], float)
        assert record["packets"] > 0
        assert 0.0 <= record["delivery_ratio"] <= 1.0

    def test_extra_keys(self, comparison_row):
        record = row_to_record(comparison_row, extra={"seed": 61, "sweep_x": 0.5})
        assert record["seed"] == 61 and record["sweep_x"] == 0.5

    def test_extra_shadowing_rejected(self, comparison_row):
        with pytest.raises(ValueError):
            row_to_record(comparison_row, extra={"mae": 0.0})

    def test_rows_to_records(self, comparison_row):
        records = rows_to_records([comparison_row, comparison_row], extra={"k": 1})
        assert len(records) == 2
        assert all(r["k"] == 1 for r in records)


class TestWriters:
    def test_csv_roundtrip(self, comparison_row, tmp_path):
        records = rows_to_records([comparison_row], extra={"seed": 61})
        out = write_csv(records, tmp_path / "results.csv")
        with out.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 1
        assert rows[0]["approach"] == "dophy"
        assert rows[0]["seed"] == "61"

    def test_csv_union_of_keys(self, tmp_path):
        out = write_csv(
            [{"a": 1}, {"a": 2, "b": 3}], tmp_path / "union.csv"
        )
        with out.open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows[0]["b"] == "" and rows[1]["b"] == "3"

    def test_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "x.csv")

    def test_json_roundtrip(self, comparison_row, tmp_path):
        records = rows_to_records([comparison_row])
        out = write_json(records, tmp_path / "results.json")
        loaded = json.loads(out.read_text())
        assert loaded[0]["approach"] == "dophy"

    def test_json_nan_becomes_null(self, tmp_path):
        out = write_json([{"x": float("nan"), "y": 1.5}], tmp_path / "nan.json")
        loaded = json.loads(out.read_text())
        assert loaded[0]["x"] is None and loaded[0]["y"] == 1.5
