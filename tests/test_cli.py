"""Tests for the command-line interface."""

import pytest

from repro.cli import SCENARIOS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "dynamic_rgg"
        assert args.seed == 1
        assert args.path_encoding == "explicit"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scenario", "mystery"])

    def test_compare_methods_default(self):
        args = build_parser().parse_args(["compare"])
        assert "dophy" in args.methods


class TestCommands:
    def test_list_scenarios(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_run_small(self, capsys):
        rc = main(
            ["run", "--scenario", "line", "--nodes", "4", "--duration", "40",
             "--seed", "2", "--min-samples", "5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "decode failures" in out
        assert "1->0" in out

    def test_run_compressed_path(self, capsys):
        rc = main(
            ["run", "--scenario", "line", "--nodes", "4", "--duration", "30",
             "--path-encoding", "compressed", "--min-samples", "5"]
        )
        assert rc == 0
        assert "bits/pkt" in capsys.readouterr().out

    def test_compare_small(self, capsys):
        rc = main(
            ["compare", "--scenario", "line", "--nodes", "4", "--duration", "60",
             "--methods", "dophy,tree_ratio", "--min-samples", "5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "dophy" in out and "tree_ratio" in out

    def test_compare_unknown_method(self, capsys):
        rc = main(
            ["compare", "--scenario", "line", "--methods", "dophy,telepathy"]
        )
        assert rc == 2
        assert "unknown methods" in capsys.readouterr().err

    def test_nodes_flag_applies(self, capsys):
        rc = main(
            ["run", "--scenario", "static_rgg", "--nodes", "12",
             "--duration", "30", "--min-samples", "1"]
        )
        assert rc == 0
        assert "12 nodes" in capsys.readouterr().out
