"""Tests for topology generators and queries."""

import networkx as nx
import pytest

from repro.net.topology import (
    Topology,
    grid_topology,
    line_topology,
    random_geometric_topology,
    topology_from_edges,
)


class TestLineTopology:
    def test_structure(self):
        t = line_topology(5)
        assert t.num_nodes == 5
        assert t.num_edges == 4
        assert t.sink == 0
        assert t.neighbors(2) == [1, 3]

    def test_hop_distances(self):
        t = line_topology(6)
        assert [t.hops_to_sink(i) for i in range(6)] == [0, 1, 2, 3, 4, 5]
        assert t.max_depth == 5

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            line_topology(1)


class TestGridTopology:
    def test_4_connectivity(self):
        t = grid_topology(3, 3)
        assert t.num_nodes == 9
        # interior node 4 has 4 neighbors
        assert t.neighbors(4) == [1, 3, 5, 7]

    def test_8_connectivity(self):
        t = grid_topology(3, 3, diagonal=True)
        assert t.neighbors(4) == [0, 1, 2, 3, 5, 6, 7, 8]

    def test_positions_follow_spacing(self):
        t = grid_topology(2, 3, spacing=2.0)
        assert t.positions[5] == (4.0, 2.0)

    def test_distance(self):
        t = grid_topology(2, 2, spacing=3.0)
        assert t.distance(0, 3) == pytest.approx(3.0 * 2**0.5)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            grid_topology(1, 1)


class TestRandomGeometric:
    def test_connected_and_reproducible(self):
        a = random_geometric_topology(50, seed=7)
        b = random_geometric_topology(50, seed=7)
        assert a.num_nodes == 50
        assert nx.is_connected(a.graph)
        assert a.undirected_edges() == b.undirected_edges()

    def test_different_seeds_differ(self):
        a = random_geometric_topology(50, seed=1)
        b = random_geometric_topology(50, seed=2)
        assert a.undirected_edges() != b.undirected_edges()

    def test_sink_pinned_at_corner(self):
        t = random_geometric_topology(30, seed=3, sink_position="corner")
        assert t.positions[0] == (0.0, 0.0)

    def test_sink_center(self):
        t = random_geometric_topology(30, seed=3, sink_position="center", side=2.0)
        assert t.positions[0] == (1.0, 1.0)

    def test_invalid_sink_position(self):
        with pytest.raises(ValueError):
            random_geometric_topology(10, seed=0, sink_position="edge")

    def test_too_few_nodes(self):
        with pytest.raises(ValueError):
            random_geometric_topology(1, seed=0)

    def test_explicit_radius_respected(self):
        t = random_geometric_topology(40, seed=5, radius=0.9)
        # with a huge radius nearly everything is adjacent
        assert t.num_edges > 40 * 5


class TestTopologyValidation:
    def test_rejects_disconnected(self):
        g = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            Topology(g, sink=0)

    def test_rejects_missing_sink(self):
        g = nx.path_graph(3)
        with pytest.raises(ValueError):
            Topology(g, sink=99)

    def test_rejects_single_node(self):
        g = nx.Graph()
        g.add_node(0)
        with pytest.raises(ValueError):
            Topology(g, sink=0)


class TestEdgesQueries:
    def test_directed_edges_both_ways(self):
        t = topology_from_edges([(0, 1), (1, 2)])
        assert t.directed_edges() == ((0, 1), (1, 0), (1, 2), (2, 1))

    def test_undirected_edges_normalized(self):
        t = topology_from_edges([(2, 1), (1, 0)])
        assert t.undirected_edges() == ((0, 1), (1, 2))

    def test_upstream_edges_point_sinkward(self):
        # Diamond: 0-1, 0-2, 1-3, 2-3
        t = topology_from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        ups = t.upstream_edges()
        assert (1, 0) in ups and (2, 0) in ups
        assert (3, 1) in ups and (3, 2) in ups
        # Sink never forwards upward; downward edges excluded.
        assert (0, 1) not in ups
        # Equal-depth edges are kept both ways (siblings can relay laterally).
        assert (1, 2) not in ups  # not an edge at all

    def test_upstream_includes_equal_depth(self):
        # Triangle 0-1, 0-2, 1-2: nodes 1 and 2 both depth 1.
        t = topology_from_edges([(0, 1), (0, 2), (1, 2)])
        ups = t.upstream_edges()
        assert (1, 2) in ups and (2, 1) in ups


class TestMemoizedAccessors:
    """The derived edge views are computed once and cannot be mutated."""

    def test_repeated_calls_return_equal_cached_values(self):
        t = random_geometric_topology(30, seed=5)
        for accessor in (t.undirected_edges, t.directed_edges, t.upstream_edges):
            first = accessor()
            second = accessor()
            assert first == second
            # Memoized: the same object comes back, not a rebuilt copy.
            assert first is second

    def test_cached_views_are_immutable(self):
        t = grid_topology(3, 3, diagonal=True)
        for accessor in (t.undirected_edges, t.directed_edges, t.upstream_edges):
            view = accessor()
            assert isinstance(view, tuple)
            with pytest.raises((TypeError, AttributeError)):
                view[0] = (99, 100)  # type: ignore[index]
            with pytest.raises((TypeError, AttributeError)):
                view.append((99, 100))  # type: ignore[attr-defined]
            # A caller materializing a list gets a private copy.
            private = list(view)
            private.append((99, 100))
            assert accessor() == view

    def test_vectorized_builders_match_reference_shapes(self):
        # Grid: the array-built edge set equals the scalar definition.
        rows, cols = 4, 5
        t = grid_topology(rows, cols, diagonal=True)
        expected = set()
        for r in range(rows):
            for c in range(cols):
                for dr, dc in ((0, 1), (1, 0), (1, 1), (1, -1)):
                    rr, cc = r + dr, c + dc
                    if 0 <= rr < rows and 0 <= cc < cols:
                        expected.add((r * cols + c, rr * cols + cc))
        assert set(t.undirected_edges()) == {
            (min(u, v), max(u, v)) for u, v in expected
        }
        assert t.positions[7] == (2 * 1.0, 1 * 1.0)
        # Hop counts match a networkx BFS on the same graph.
        nx_hops = dict(nx.single_source_shortest_path_length(t.graph, 0))
        assert {n: t.hops_to_sink(n) for n in t.nodes} == nx_hops

    def test_bfs_hops_match_networkx_on_rgg(self):
        t = random_geometric_topology(60, seed=9)
        nx_hops = dict(nx.single_source_shortest_path_length(t.graph, t.sink))
        assert {n: t.hops_to_sink(n) for n in t.nodes} == nx_hops
