"""FaultPlan: validation, reproducibility, and end-to-end injection."""

import pytest

from repro.core.config import DophyConfig
from repro.core.dophy import DophySystem
from repro.net.faults import FaultPlan, SinkOutage
from repro.workloads import line_scenario


class TestValidation:
    def test_rates_are_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(corruption_rate=1.2)
        with pytest.raises(ValueError):
            FaultPlan(truncation_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(duplication_rate=2.0)
        with pytest.raises(ValueError):
            FaultPlan(max_flips=0)

    def test_outage_windows(self):
        with pytest.raises(ValueError):
            SinkOutage(10.0, 10.0)
        with pytest.raises(ValueError):
            SinkOutage(-1.0, 5.0)
        with pytest.raises(ValueError):
            FaultPlan(sink_outages=[SinkOutage(0.0, 10.0), SinkOutage(5.0, 15.0)])
        plan = FaultPlan(sink_outages=[SinkOutage(20.0, 30.0), SinkOutage(0.0, 10.0)])
        assert plan.sink_down(0.0)
        assert plan.sink_down(25.0)
        assert not plan.sink_down(10.0)  # end is exclusive
        assert not plan.sink_down(15.0)

    def test_inactive_plan(self):
        assert not FaultPlan().active
        assert FaultPlan(corruption_rate=0.1).active
        assert FaultPlan(sink_outages=[SinkOutage(0.0, 1.0)]).active


class TestReproducibility:
    def test_same_seed_same_mutations(self):
        data = bytes(range(32))
        a = FaultPlan(seed=42, corruption_rate=0.5, truncation_rate=0.5)
        b = FaultPlan(seed=42, corruption_rate=0.5, truncation_rate=0.5)
        outs_a = [a.corrupt_annotation(data, 256) for _ in range(50)]
        outs_b = [b.corrupt_annotation(data, 256) for _ in range(50)]
        assert outs_a == outs_b
        c = FaultPlan(seed=43, corruption_rate=0.5, truncation_rate=0.5)
        assert outs_a != [c.corrupt_annotation(data, 256) for _ in range(50)]

    def test_streams_are_independent(self):
        # Enabling truncation must not change which packets get corrupted.
        data = bytes(range(32))
        flips_only = FaultPlan(seed=7, corruption_rate=0.3)
        both = FaultPlan(seed=7, corruption_rate=0.3, truncation_rate=0.9)
        for _ in range(50):
            d1, _, _ = flips_only.corrupt_annotation(data, 256)
            d2, bits2, _ = both.corrupt_annotation(data, 256)
            # The flip decisions match; truncation only shortens afterwards
            # (compare the whole bytes the truncated copy retained).
            whole = bits2 // 8
            assert d2[:whole] == d1[:whole]

    def test_zero_rates_touch_nothing(self):
        plan = FaultPlan(seed=1)
        data = bytes(range(8))
        assert plan.corrupt_annotation(data, 64) == (data, 64, False)
        assert not plan.draw_duplicate()

    def test_truncation_keeps_at_least_one_bit(self):
        plan = FaultPlan(seed=3, truncation_rate=1.0)
        for _ in range(100):
            _, bits, mutated = plan.corrupt_annotation(bytes(4), 32)
            assert mutated
            assert 1 <= bits < 32


class TestEndToEnd:
    def run_with(self, faults):
        scenario = line_scenario(6, duration=200.0, traffic_period=4.0)
        system = DophySystem(DophyConfig(model_update_period=60.0), faults=faults)
        sim = scenario.make_simulation(19, [system])
        result = sim.run()
        return system.report(), len(result.delivered_packets)

    def test_sink_outage_discards_are_counted(self):
        report, delivered = self.run_with(
            FaultPlan(sink_outages=[SinkOutage(50.0, 100.0)])
        )
        assert report.sink_outage_discards > 0
        assert report.decode_failures == report.attributed_failures
        assert report.packets_decoded + report.decode_failures == delivered

    def test_duplicates_are_tolerated_and_counted(self):
        report, delivered = self.run_with(FaultPlan(seed=2, duplication_rate=0.3))
        assert report.duplicate_deliveries > 0
        # Duplicates never double-count evidence or break attribution.
        assert report.packets_decoded + report.decode_failures == delivered

    def test_corruption_degrades_but_never_crashes(self):
        report, delivered = self.run_with(
            FaultPlan(seed=8, corruption_rate=0.2, truncation_rate=0.1)
        )
        assert report.decode_failures > 0
        assert report.decode_failures == report.attributed_failures
        assert report.packets_decoded + report.decode_failures == delivered
        assert sum(report.decode_failure_causes.values()) == report.decode_failures


class TestShardFaultPlan:
    def test_validation(self):
        from repro.net.faults import ShardFaultPlan

        with pytest.raises(ValueError):
            ShardFaultPlan(crash_rate=1.5)
        with pytest.raises(ValueError):
            ShardFaultPlan(stall_rounds=0)
        with pytest.raises(ValueError):
            ShardFaultPlan(crash_at=[(0, 1)])  # rounds are 1-based
        with pytest.raises(ValueError):
            ShardFaultPlan(stall_at=[(3, -1)])

    def test_active(self):
        from repro.net.faults import ShardFaultPlan

        assert not ShardFaultPlan().active
        assert ShardFaultPlan(crash_rate=0.1).active
        assert ShardFaultPlan(stall_at=[(2, 0)]).active

    def test_draws_are_stateless(self):
        from repro.net.faults import ShardFaultPlan

        plan = ShardFaultPlan(seed=7, crash_rate=0.3)
        first = [plan.draw_crash(s, r) for s in range(4) for r in range(1, 30)]
        # Querying out of order / repeatedly never shifts the schedule.
        again = [plan.draw_crash(s, r) for s in range(4) for r in range(1, 30)]
        assert first == again
        shuffled = [
            plan.draw_crash(s, r) for r in range(29, 0, -1) for s in range(3, -1, -1)
        ]
        assert sorted(first) == sorted(shuffled)
        assert any(first) and not all(first)

    def test_crash_and_stall_streams_are_independent(self):
        from repro.net.faults import ShardFaultPlan

        crashes_only = ShardFaultPlan(seed=7, crash_rate=0.3)
        both = ShardFaultPlan(seed=7, crash_rate=0.3, stall_rate=0.3)
        schedule = [
            crashes_only.draw_crash(s, r) for s in range(4) for r in range(1, 30)
        ]
        # Enabling stalls must not shift which rounds crash.
        assert schedule == [
            both.draw_crash(s, r) for s in range(4) for r in range(1, 30)
        ]

    def test_forced_coordinates_fire_exactly(self):
        from repro.net.faults import ShardFaultPlan

        plan = ShardFaultPlan(crash_at=[(3, 1)], stall_at=[(5, 0)])
        assert plan.draw_crash(1, 3)
        assert not plan.draw_crash(1, 4)
        assert not plan.draw_crash(0, 3)
        assert plan.draw_stall(0, 5)
        assert not plan.draw_stall(0, 4)
