"""Calendar-queue wheel vs the reference heap: one ordering contract.

The array engine's bit-identity guarantee rests on the two queues being
observationally interchangeable (events.py documents the contract):
pops happen in ``(time, seq)`` order, equal float timestamps resolve in
schedule order, cancellation is lazy, and the simulator behaves the same
on either. The hypothesis suites drive both implementations with the
same random schedules — including adversarial ties and interleaved
push/pop around bucket boundaries — and require identical pop streams.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.events import CalendarQueue, EventQueue
from repro.net.sim import Simulator

#: Timestamps drawn from a small lattice so equal-time collisions (the
#: float tie-break hazard) occur constantly, plus awkward float values.
_TIMES = st.one_of(
    st.integers(min_value=0, max_value=40).map(lambda k: k * 0.25),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False),
)

_WIDTHS = st.sampled_from([0.001, 0.01, 0.1, 1.0, 3.7])


def _drain(queue):
    order = []
    while (event := queue.pop()) is not None:
        order.append((event.time, event.seq))
    return order


@settings(max_examples=100, deadline=None)
@given(times=st.lists(_TIMES, max_size=60), width=_WIDTHS)
def test_property_pop_order_matches_heap(times, width):
    heap, wheel = EventQueue(), CalendarQueue(bucket_width=width)
    for t in times:
        heap.push(t, lambda: None)
        wheel.push(t, lambda: None)
    heap_order = _drain(heap)
    assert _drain(wheel) == heap_order
    # The shared contract, independently: sorted by (time, seq) — equal
    # timestamps strictly in schedule order.
    assert heap_order == sorted(heap_order)


@settings(max_examples=100, deadline=None)
@given(
    times=st.lists(_TIMES, min_size=1, max_size=60),
    cancel=st.data(),
    width=_WIDTHS,
)
def test_property_cancellation_matches_heap(times, cancel, width):
    heap, wheel = EventQueue(), CalendarQueue(bucket_width=width)
    heap_handles = [heap.push(t, lambda: None) for t in times]
    wheel_handles = [wheel.push(t, lambda: None) for t in times]
    doomed = cancel.draw(
        st.sets(st.integers(min_value=0, max_value=len(times) - 1))
    )
    for i in doomed:
        heap_handles[i].cancel()
        wheel_handles[i].cancel()
    assert len(heap) == len(wheel) == len(times) - len(doomed)
    assert _drain(wheel) == _drain(heap)


@settings(max_examples=100, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["push", "pop", "peek"]), _TIMES),
        max_size=80,
    ),
    width=_WIDTHS,
)
def test_property_interleaved_push_pop_matches_heap(ops, width):
    """Pushes landing at/before the wheel's current bucket mid-drain must
    still surface in exact (time, seq) order — the regime where a naive
    wheel would misfile entries."""
    heap, wheel = EventQueue(), CalendarQueue(bucket_width=width)
    popped_heap, popped_wheel = [], []
    for op, t in ops:
        if op == "push":
            heap.push(t, lambda: None)
            wheel.push(t, lambda: None)
        elif op == "pop":
            a, b = heap.pop(), wheel.pop()
            popped_heap.append(None if a is None else (a.time, a.seq))
            popped_wheel.append(None if b is None else (b.time, b.seq))
        else:
            assert heap.peek_time() == wheel.peek_time()
    assert popped_wheel == popped_heap
    assert _drain(wheel) == _drain(heap)


@settings(max_examples=40, deadline=None)
@given(
    period=st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
    horizon=st.floats(min_value=1.0, max_value=20.0, allow_nan=False),
    width=_WIDTHS,
)
def test_property_every_fires_identically_on_both_queues(period, horizon, width):
    firings = {}
    for name, queue in (("heap", EventQueue()), ("wheel", CalendarQueue(width))):
        sim = Simulator(queue=queue)
        times = []
        sim.every(period, lambda times=times, sim=sim: times.append(sim.now))
        sim.run_until(horizon)
        firings[name] = times
    assert firings["wheel"] == firings["heap"]
    assert all(t <= horizon for t in firings["heap"])


@pytest.mark.parametrize("queue_cls", [EventQueue, CalendarQueue])
def test_no_past_scheduling_on_either_queue(queue_cls):
    sim = Simulator(queue=queue_cls())
    sim.at(1.0, sim.stop)
    sim.run()
    assert sim.now == 1.0
    with pytest.raises(ValueError):
        sim.at(0.5, lambda: None)
    with pytest.raises(ValueError):
        sim.after(-0.1, lambda: None)


class TestTieBreakContract:
    """Regression pin for the float-time tie-break hazard (events.py):
    events at bit-equal timestamps fire in schedule order, not in
    heap-internal or bucket-internal order."""

    @pytest.mark.parametrize("queue_cls", [EventQueue, CalendarQueue])
    def test_equal_timestamps_pop_in_schedule_order(self, queue_cls):
        queue = queue_cls()
        order = []
        # 0.1 + 0.2 == 0.30000000000000004 != 0.3: schedule a mix of
        # bit-equal and almost-equal floats out of order.
        queue.push(0.1 + 0.2, lambda: order.append("computed-a"))
        queue.push(0.3, lambda: order.append("literal"))
        queue.push(0.1 + 0.2, lambda: order.append("computed-b"))
        while (event := queue.pop()) is not None:
            event.fire()
        assert order == ["literal", "computed-a", "computed-b"]

    @pytest.mark.parametrize("queue_cls", [EventQueue, CalendarQueue])
    def test_simultaneous_exchange_end_and_forward(self, queue_cls):
        """The simulator pattern that makes ties real: with zero forward
        delay, an exchange-end callback and the forwarding it released
        land on the bit-identical timestamp."""
        sim = Simulator(queue=queue_cls())
        order = []
        end = 0.005 + 0.01  # one failed MAC attempt's end time
        sim.at(end, lambda: order.append("finish_exchange"))
        sim.at(end, lambda: order.append("forward"))
        sim.run()
        assert order == ["finish_exchange", "forward"]

    def test_wheel_ties_straddling_bucket_refill(self):
        """Ties surviving a bucket promotion (heapify) keep seq order."""
        wheel = CalendarQueue(bucket_width=0.5)
        order = []
        for i in range(8):
            wheel.push(1.25, lambda i=i: order.append(i))
        wheel.push(0.1, lambda: order.append("early"))
        while (event := wheel.pop()) is not None:
            event.fire()
        assert order == ["early", 0, 1, 2, 3, 4, 5, 6, 7]


class TestCalendarQueueBasics:
    def test_rejects_bad_bucket_width(self):
        for width in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(ValueError):
                CalendarQueue(bucket_width=width)

    def test_len_and_bool_track_live_events(self):
        wheel = CalendarQueue()
        assert not wheel
        handle = wheel.push(1.0, lambda: None)
        wheel.push(2.0, lambda: None)
        assert len(wheel) == 2
        handle.cancel()
        assert len(wheel) == 1
        assert wheel.pop().time == 2.0
        assert not wheel

    def test_peek_time_skips_cancelled(self):
        wheel = CalendarQueue()
        first = wheel.push(1.0, lambda: None)
        wheel.push(5.0, lambda: None)
        first.cancel()
        assert wheel.peek_time() == 5.0

    def test_push_args_reach_callback(self):
        wheel = CalendarQueue()
        seen = []
        wheel.push(1.0, seen.append, "payload")
        wheel.pop().fire()
        assert seen == ["payload"]

    def test_push_into_drained_past_bucket(self):
        """After the wheel advances, a push at an earlier time must still
        pop before everything later (general priority-queue semantics)."""
        wheel = CalendarQueue(bucket_width=1.0)
        wheel.push(5.5, lambda: None)
        assert wheel.pop().time == 5.5
        wheel.push(9.0, lambda: None)
        wheel.push(0.25, lambda: None)
        assert wheel.pop().time == 0.25
        assert wheel.pop().time == 9.0
