"""Tests for link loss models and the channel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.link import (
    BernoulliLink,
    Channel,
    DriftingLink,
    GilbertElliottLink,
    beta_loss_assigner,
    drifting_loss_assigner,
    gilbert_elliott_assigner,
    uniform_loss_assigner,
)
from repro.net.topology import line_topology, topology_from_edges
from repro.utils.rng import RngRegistry


def make_rng():
    return np.random.default_rng(42)


class TestBernoulliLink:
    def test_empirical_matches_parameter(self):
        link = BernoulliLink(0.3)
        rng = make_rng()
        n = 20_000
        losses = sum(0 if link.sample(rng, 0.0) else 1 for _ in range(n))
        assert abs(losses / n - 0.3) < 0.02

    def test_extremes(self):
        rng = make_rng()
        assert BernoulliLink(0.0).sample(rng, 0.0) is True
        assert BernoulliLink(1.0).sample(rng, 0.0) is False

    def test_true_and_mean_loss_constant(self):
        link = BernoulliLink(0.2)
        assert link.true_loss(5.0) == 0.2
        assert link.mean_loss(0.0, 100.0) == 0.2

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            BernoulliLink(1.5)
        with pytest.raises(ValueError):
            BernoulliLink(-0.1)


class TestGilbertElliott:
    def test_stationary_loss(self):
        link = GilbertElliottLink(0.1, 0.3, loss_good=0.02, loss_bad=0.6)
        pi_bad = 0.1 / 0.4
        expected = pi_bad * 0.6 + (1 - pi_bad) * 0.02
        assert link.true_loss(0.0) == pytest.approx(expected)

    def test_empirical_approaches_stationary(self):
        link = GilbertElliottLink(0.05, 0.2, loss_good=0.05, loss_bad=0.5)
        rng = make_rng()
        n = 50_000
        losses = sum(0 if link.sample(rng, 0.0) else 1 for _ in range(n))
        assert abs(losses / n - link.true_loss(0.0)) < 0.02

    def test_burstiness(self):
        """Long bad bursts => losses cluster more than iid with the same mean."""
        bursty = GilbertElliottLink(0.01, 0.05, loss_good=0.01, loss_bad=0.9)
        rng = make_rng()
        outcomes = [bursty.sample(rng, 0.0) for _ in range(30_000)]
        # Probability of a loss immediately after a loss should far exceed
        # the marginal loss rate.
        loss_after_loss = 0
        losses = 0
        for prev, cur in zip(outcomes, outcomes[1:]):
            if not prev:
                losses += 1
                if not cur:
                    loss_after_loss += 1
        marginal = outcomes.count(False) / len(outcomes)
        assert loss_after_loss / max(losses, 1) > 2.0 * marginal

    def test_rejects_stuck_chain(self):
        with pytest.raises(ValueError):
            GilbertElliottLink(0.0, 0.0)

    def test_invalid_start_state(self):
        with pytest.raises(ValueError):
            GilbertElliottLink(0.1, 0.1, start_state="ugly")


class TestDriftingLink:
    def test_loss_oscillates(self):
        link = DriftingLink(0.3, amplitude=0.2, period=100.0)
        assert link.true_loss(25.0) == pytest.approx(0.5)  # peak of sine
        assert link.true_loss(75.0) == pytest.approx(0.1)
        assert link.true_loss(0.0) == pytest.approx(0.3)

    def test_clipping(self):
        link = DriftingLink(0.05, amplitude=0.2, period=10.0)
        # trough would be negative; clipped to eps
        assert link.true_loss(7.5) == pytest.approx(1e-4)

    def test_mean_loss_over_full_period_near_base(self):
        link = DriftingLink(0.4, amplitude=0.1, period=50.0)
        assert link.mean_loss(0.0, 50.0, resolution=501) == pytest.approx(0.4, abs=0.01)

    def test_sampling_tracks_instantaneous_loss(self):
        link = DriftingLink(0.3, amplitude=0.25, period=1000.0)
        rng = make_rng()
        # Sample at the peak region only.
        t = 250.0
        n = 20_000
        losses = sum(0 if link.sample(rng, t) else 1 for _ in range(n))
        assert abs(losses / n - link.true_loss(t)) < 0.02

    def test_rejects_bad_amplitude(self):
        with pytest.raises(ValueError):
            DriftingLink(0.3, amplitude=0.9, period=10.0)


class TestChannel:
    def test_build_covers_all_directed_edges(self):
        topo = line_topology(4)
        ch = Channel.build(topo, uniform_loss_assigner(0.1, 0.2), RngRegistry(1))
        assert sorted(ch.directed_edges()) == list(topo.directed_edges())

    def test_symmetric_bernoulli(self):
        topo = line_topology(3)
        ch = Channel.build(
            topo, uniform_loss_assigner(0.05, 0.4), RngRegistry(3), symmetric=True
        )
        for u, v in topo.undirected_edges():
            assert ch.true_loss(u, v, 0.0) == ch.true_loss(v, u, 0.0)

    def test_asymmetric_by_default(self):
        topo = line_topology(6)
        ch = Channel.build(topo, uniform_loss_assigner(0.0, 0.5), RngRegistry(3))
        diffs = [
            abs(ch.true_loss(u, v, 0.0) - ch.true_loss(v, u, 0.0))
            for u, v in topo.undirected_edges()
        ]
        assert max(diffs) > 0.0

    def test_transmit_counts_draws_and_empirical_loss(self):
        topo = line_topology(2)
        models = {(0, 1): BernoulliLink(0.5), (1, 0): BernoulliLink(0.0)}
        ch = Channel(topo, models, RngRegistry(9))
        n = 5000
        ok = sum(1 for _ in range(n) if ch.transmit(0, 1, 0.0))
        assert ch.draws(0, 1) == n
        assert ch.empirical_loss(0, 1) == pytest.approx(1 - ok / n)
        assert ch.empirical_loss(1, 0) is None  # unused direction

    def test_reproducible_across_instances(self):
        topo = line_topology(3)
        results = []
        for _ in range(2):
            ch = Channel.build(topo, uniform_loss_assigner(0.2, 0.4), RngRegistry(77))
            results.append([ch.transmit(1, 0, 0.0) for _ in range(50)])
        assert results[0] == results[1]

    def test_model_mismatch_rejected(self):
        topo = line_topology(3)
        models = {(0, 1): BernoulliLink(0.1)}  # missing edges
        with pytest.raises(ValueError):
            Channel(topo, models, RngRegistry(0))

    def test_beta_assigner_produces_valid_losses(self):
        topo = topology_from_edges([(0, 1), (1, 2), (2, 3), (0, 3)])
        ch = Channel.build(topo, beta_loss_assigner(1.2, 6.0, scale=0.8), RngRegistry(5))
        for u, v in topo.directed_edges():
            assert 0.0 <= ch.true_loss(u, v, 0.0) <= 0.8


class _ScalarOnly:
    """Wrap an assigner, hiding its ``batch`` so Channel.build falls back
    to the scalar per-edge loop — the reference for the differential tests."""

    def __init__(self, assigner):
        self._assigner = assigner

    def __call__(self, u, v, rng):
        return self._assigner(u, v, rng)


def _model_params(model):
    if isinstance(model, BernoulliLink):
        return ("bernoulli", model.loss)
    if isinstance(model, GilbertElliottLink):
        return (
            "ge",
            model.p_gb,
            model.p_bg,
            model.loss_good,
            model.loss_bad,
            model._in_bad,
        )
    if isinstance(model, DriftingLink):
        return ("drift", model.base_loss, model.amplitude, model.period, model.phase)
    raise AssertionError(f"unexpected model {model!r}")


class TestBatchedBuildBitIdentity:
    """Batched Channel.build must replay the scalar loop bit-for-bit:
    identical model parameters per edge AND identical post-build RNG
    stream position (pinning the block-draw discipline)."""

    ASSIGNERS = [
        ("uniform", lambda: uniform_loss_assigner(0.05, 0.45)),
        ("ge", lambda: gilbert_elliott_assigner()),
        (
            "drifting",
            lambda: drifting_loss_assigner(
                base_range=(0.05, 0.3),
                amplitude_range=(0.05, 0.2),
                period_range=(80.0, 300.0),
            ),
        ),
    ]

    @pytest.mark.parametrize("name,factory", ASSIGNERS, ids=[a[0] for a in ASSIGNERS])
    def test_asymmetric_matches_scalar(self, name, factory):
        topo = topology_from_edges([(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)])
        fast = Channel.build(topo, factory(), RngRegistry(31))
        slow_reg = RngRegistry(31)
        slow = Channel.build(topo, _ScalarOnly(factory()), slow_reg)
        for edge in topo.directed_edges():
            assert _model_params(fast.model(*edge)) == _model_params(slow.model(*edge))
        # Post-build stream state: the next draw from the assign stream
        # must be identical (same number of raw uniforms consumed).
        a = fast._rng.get("channel", "assign").random()
        b = slow_reg.get("channel", "assign").random()
        assert a == b

    def test_symmetric_bernoulli_matches_scalar(self):
        topo = topology_from_edges([(0, 1), (1, 2), (2, 3), (0, 3)])
        fast = Channel.build(
            topo, uniform_loss_assigner(0.1, 0.4), RngRegistry(13), symmetric=True
        )
        slow_reg = RngRegistry(13)
        slow = Channel.build(
            topo, _ScalarOnly(uniform_loss_assigner(0.1, 0.4)), slow_reg, symmetric=True
        )
        for edge in topo.directed_edges():
            assert fast.model(*edge).loss == slow.model(*edge).loss
        assert (
            fast._rng.get("channel", "assign").random()
            == slow_reg.get("channel", "assign").random()
        )

    def test_symmetric_stateful_falls_back_to_scalar(self):
        # GE under symmetric=True draws forward AND backward in the
        # scalar loop (distinct instances); the batch fast path must not
        # engage with a different draw count.
        topo = topology_from_edges([(0, 1), (1, 2)])
        fast = Channel.build(
            topo, gilbert_elliott_assigner(), RngRegistry(7), symmetric=True
        )
        slow_reg = RngRegistry(7)
        slow = Channel.build(
            topo, _ScalarOnly(gilbert_elliott_assigner()), slow_reg, symmetric=True
        )
        for edge in topo.directed_edges():
            assert _model_params(fast.model(*edge)) == _model_params(slow.model(*edge))
        assert (
            fast._rng.get("channel", "assign").random()
            == slow_reg.get("channel", "assign").random()
        )

    def test_batch_method_replays_call_stream(self):
        # Direct unit check: assigner.batch(n) == n sequential __call__s,
        # in values and stream consumption.
        for _, factory in self.ASSIGNERS:
            a = factory()
            rng1 = np.random.default_rng(99)
            rng2 = np.random.default_rng(99)
            batched = a.batch(6, rng1)
            scalar = [a(0, 1, rng2) for _ in range(6)]
            for m1, m2 in zip(batched, scalar):
                assert _model_params(m1) == _model_params(m2)
            assert rng1.random() == rng2.random()


class TestFreshCopy:
    def test_bernoulli_fresh_copy_is_self(self):
        m = BernoulliLink(0.2)
        assert m.fresh_copy() is m

    def test_ge_fresh_copy_is_independent(self):
        m = GilbertElliottLink(0.1, 0.3, loss_good=0.02, loss_bad=0.6)
        c = m.fresh_copy()
        assert c is not m
        assert _model_params(c) == _model_params(m)
        # Advancing the copy's chain must not touch the prototype.
        rng = make_rng()
        for _ in range(200):
            c.sample(rng, 0.0)
        assert m._in_bad is False


class TestSharedStateEdges:
    def test_plain_channel_has_none(self):
        topo = line_topology(4)
        ch = Channel.build(topo, uniform_loss_assigner(0.1, 0.2), RngRegistry(1))
        assert ch.shared_state_edges() == frozenset()
        assert ch.shared_state_edges() is ch.shared_state_edges()  # memoized

    def test_interference_channel_reports_all_edges(self):
        from repro.net.interference import InterfererField, interference_assigner

        topo = line_topology(3)
        field = InterfererField.random(topo, seed=5, num_interferers=2)
        ch = Channel.build(topo, interference_assigner(topo, field), RngRegistry(5))
        assert ch.shared_state_edges() == frozenset(topo.directed_edges())


class TestAssignerValidation:
    def test_uniform_bounds(self):
        with pytest.raises(ValueError):
            uniform_loss_assigner(0.5, 0.2)
        with pytest.raises(ValueError):
            uniform_loss_assigner(-0.1, 0.2)

    def test_beta_params(self):
        with pytest.raises(ValueError):
            beta_loss_assigner(0.0, 1.0)
        with pytest.raises(ValueError):
            beta_loss_assigner(1.0, 1.0, scale=1.5)


@settings(max_examples=25, deadline=None)
@given(loss=st.floats(min_value=0.0, max_value=1.0))
def test_property_bernoulli_sample_rate(loss):
    """Sampled loss rate concentrates near the parameter for any loss value."""
    link = BernoulliLink(loss)
    rng = np.random.default_rng(int(loss * 1e6) + 1)
    n = 4000
    observed = sum(0 if link.sample(rng, 0.0) else 1 for _ in range(n)) / n
    assert abs(observed - loss) < 0.05
