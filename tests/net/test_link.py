"""Tests for link loss models and the channel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.link import (
    BernoulliLink,
    Channel,
    DriftingLink,
    GilbertElliottLink,
    beta_loss_assigner,
    uniform_loss_assigner,
)
from repro.net.topology import line_topology, topology_from_edges
from repro.utils.rng import RngRegistry


def make_rng():
    return np.random.default_rng(42)


class TestBernoulliLink:
    def test_empirical_matches_parameter(self):
        link = BernoulliLink(0.3)
        rng = make_rng()
        n = 20_000
        losses = sum(0 if link.sample(rng, 0.0) else 1 for _ in range(n))
        assert abs(losses / n - 0.3) < 0.02

    def test_extremes(self):
        rng = make_rng()
        assert BernoulliLink(0.0).sample(rng, 0.0) is True
        assert BernoulliLink(1.0).sample(rng, 0.0) is False

    def test_true_and_mean_loss_constant(self):
        link = BernoulliLink(0.2)
        assert link.true_loss(5.0) == 0.2
        assert link.mean_loss(0.0, 100.0) == 0.2

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            BernoulliLink(1.5)
        with pytest.raises(ValueError):
            BernoulliLink(-0.1)


class TestGilbertElliott:
    def test_stationary_loss(self):
        link = GilbertElliottLink(0.1, 0.3, loss_good=0.02, loss_bad=0.6)
        pi_bad = 0.1 / 0.4
        expected = pi_bad * 0.6 + (1 - pi_bad) * 0.02
        assert link.true_loss(0.0) == pytest.approx(expected)

    def test_empirical_approaches_stationary(self):
        link = GilbertElliottLink(0.05, 0.2, loss_good=0.05, loss_bad=0.5)
        rng = make_rng()
        n = 50_000
        losses = sum(0 if link.sample(rng, 0.0) else 1 for _ in range(n))
        assert abs(losses / n - link.true_loss(0.0)) < 0.02

    def test_burstiness(self):
        """Long bad bursts => losses cluster more than iid with the same mean."""
        bursty = GilbertElliottLink(0.01, 0.05, loss_good=0.01, loss_bad=0.9)
        rng = make_rng()
        outcomes = [bursty.sample(rng, 0.0) for _ in range(30_000)]
        # Probability of a loss immediately after a loss should far exceed
        # the marginal loss rate.
        loss_after_loss = 0
        losses = 0
        for prev, cur in zip(outcomes, outcomes[1:]):
            if not prev:
                losses += 1
                if not cur:
                    loss_after_loss += 1
        marginal = outcomes.count(False) / len(outcomes)
        assert loss_after_loss / max(losses, 1) > 2.0 * marginal

    def test_rejects_stuck_chain(self):
        with pytest.raises(ValueError):
            GilbertElliottLink(0.0, 0.0)

    def test_invalid_start_state(self):
        with pytest.raises(ValueError):
            GilbertElliottLink(0.1, 0.1, start_state="ugly")


class TestDriftingLink:
    def test_loss_oscillates(self):
        link = DriftingLink(0.3, amplitude=0.2, period=100.0)
        assert link.true_loss(25.0) == pytest.approx(0.5)  # peak of sine
        assert link.true_loss(75.0) == pytest.approx(0.1)
        assert link.true_loss(0.0) == pytest.approx(0.3)

    def test_clipping(self):
        link = DriftingLink(0.05, amplitude=0.2, period=10.0)
        # trough would be negative; clipped to eps
        assert link.true_loss(7.5) == pytest.approx(1e-4)

    def test_mean_loss_over_full_period_near_base(self):
        link = DriftingLink(0.4, amplitude=0.1, period=50.0)
        assert link.mean_loss(0.0, 50.0, resolution=501) == pytest.approx(0.4, abs=0.01)

    def test_sampling_tracks_instantaneous_loss(self):
        link = DriftingLink(0.3, amplitude=0.25, period=1000.0)
        rng = make_rng()
        # Sample at the peak region only.
        t = 250.0
        n = 20_000
        losses = sum(0 if link.sample(rng, t) else 1 for _ in range(n))
        assert abs(losses / n - link.true_loss(t)) < 0.02

    def test_rejects_bad_amplitude(self):
        with pytest.raises(ValueError):
            DriftingLink(0.3, amplitude=0.9, period=10.0)


class TestChannel:
    def test_build_covers_all_directed_edges(self):
        topo = line_topology(4)
        ch = Channel.build(topo, uniform_loss_assigner(0.1, 0.2), RngRegistry(1))
        assert sorted(ch.directed_edges()) == topo.directed_edges()

    def test_symmetric_bernoulli(self):
        topo = line_topology(3)
        ch = Channel.build(
            topo, uniform_loss_assigner(0.05, 0.4), RngRegistry(3), symmetric=True
        )
        for u, v in topo.undirected_edges():
            assert ch.true_loss(u, v, 0.0) == ch.true_loss(v, u, 0.0)

    def test_asymmetric_by_default(self):
        topo = line_topology(6)
        ch = Channel.build(topo, uniform_loss_assigner(0.0, 0.5), RngRegistry(3))
        diffs = [
            abs(ch.true_loss(u, v, 0.0) - ch.true_loss(v, u, 0.0))
            for u, v in topo.undirected_edges()
        ]
        assert max(diffs) > 0.0

    def test_transmit_counts_draws_and_empirical_loss(self):
        topo = line_topology(2)
        models = {(0, 1): BernoulliLink(0.5), (1, 0): BernoulliLink(0.0)}
        ch = Channel(topo, models, RngRegistry(9))
        n = 5000
        ok = sum(1 for _ in range(n) if ch.transmit(0, 1, 0.0))
        assert ch.draws(0, 1) == n
        assert ch.empirical_loss(0, 1) == pytest.approx(1 - ok / n)
        assert ch.empirical_loss(1, 0) is None  # unused direction

    def test_reproducible_across_instances(self):
        topo = line_topology(3)
        results = []
        for _ in range(2):
            ch = Channel.build(topo, uniform_loss_assigner(0.2, 0.4), RngRegistry(77))
            results.append([ch.transmit(1, 0, 0.0) for _ in range(50)])
        assert results[0] == results[1]

    def test_model_mismatch_rejected(self):
        topo = line_topology(3)
        models = {(0, 1): BernoulliLink(0.1)}  # missing edges
        with pytest.raises(ValueError):
            Channel(topo, models, RngRegistry(0))

    def test_beta_assigner_produces_valid_losses(self):
        topo = topology_from_edges([(0, 1), (1, 2), (2, 3), (0, 3)])
        ch = Channel.build(topo, beta_loss_assigner(1.2, 6.0, scale=0.8), RngRegistry(5))
        for u, v in topo.directed_edges():
            assert 0.0 <= ch.true_loss(u, v, 0.0) <= 0.8


class TestAssignerValidation:
    def test_uniform_bounds(self):
        with pytest.raises(ValueError):
            uniform_loss_assigner(0.5, 0.2)
        with pytest.raises(ValueError):
            uniform_loss_assigner(-0.1, 0.2)

    def test_beta_params(self):
        with pytest.raises(ValueError):
            beta_loss_assigner(0.0, 1.0)
        with pytest.raises(ValueError):
            beta_loss_assigner(1.0, 1.0, scale=1.5)


@settings(max_examples=25, deadline=None)
@given(loss=st.floats(min_value=0.0, max_value=1.0))
def test_property_bernoulli_sample_rate(loss):
    """Sampled loss rate concentrates near the parameter for any loss value."""
    link = BernoulliLink(loss)
    rng = np.random.default_rng(int(loss * 1e6) + 1)
    n = 4000
    observed = sum(0 if link.sample(rng, 0.0) else 1 for _ in range(n)) / n
    assert abs(observed - loss) < 0.05
