"""Tests for the CTP-style dynamic routing engine."""

import pytest

from repro.net.link import BernoulliLink, Channel, DriftingLink, uniform_loss_assigner
from repro.net.routing import RoutingConfig, RoutingEngine
from repro.net.sim import Simulator
from repro.net.topology import (
    grid_topology,
    line_topology,
    topology_from_edges,
)
from repro.utils.rng import RngRegistry


def build_engine(topo, models=None, config=None, seed=1, assigner=None):
    reg = RngRegistry(seed)
    if models is not None:
        channel = Channel(topo, models, reg)
    else:
        channel = Channel.build(topo, assigner or uniform_loss_assigner(0.05, 0.25), reg)
    return RoutingEngine(topo, channel, reg, config or RoutingConfig(etx_noise_std=0.0))


class TestInitialTree:
    def test_line_points_to_sink(self):
        topo = line_topology(5)
        eng = build_engine(topo)
        assert eng.parent(0) is None
        for n in range(1, 5):
            assert eng.parent(n) == n - 1

    def test_diamond_picks_better_branch(self):
        # 3 can route via 1 (bad links) or 2 (good links).
        topo = topology_from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        models = {
            (1, 0): BernoulliLink(0.5), (0, 1): BernoulliLink(0.5),
            (2, 0): BernoulliLink(0.05), (0, 2): BernoulliLink(0.05),
            (3, 1): BernoulliLink(0.05), (1, 3): BernoulliLink(0.05),
            (3, 2): BernoulliLink(0.05), (2, 3): BernoulliLink(0.05),
        }
        eng = build_engine(topo, models=models)
        assert eng.parent(3) == 2

    def test_route_costs_monotone_toward_sink(self):
        topo = grid_topology(4, 4)
        eng = build_engine(topo)
        for node in topo.nodes:
            parent = eng.parent(node)
            if parent is not None:
                assert eng.route_cost(parent) < eng.route_cost(node)

    def test_path_to_sink_terminates(self):
        topo = grid_topology(5, 5, diagonal=True)
        eng = build_engine(topo)
        for node in topo.nodes:
            path = eng.path_to_sink(node)
            assert path[0] == node and path[-1] == 0
            assert len(set(path)) == len(path)  # loop-free


class TestDynamics:
    def test_no_churn_without_noise_or_drift(self):
        topo = grid_topology(4, 4, diagonal=True)
        cfg = RoutingConfig(etx_noise_std=0.0, data_driven_updates=False)
        eng = build_engine(topo, config=cfg)
        initial = eng.tree_snapshot()
        for t in range(1, 20):
            eng.beacon_round(float(t))
        assert eng.tree_snapshot() == initial
        assert eng.total_parent_changes == 0

    def test_noise_induces_churn(self):
        topo = grid_topology(5, 5, diagonal=True)
        cfg = RoutingConfig(etx_noise_std=0.8, parent_switch_threshold=0.0)
        eng = build_engine(topo, config=cfg)
        for t in range(1, 40):
            eng.beacon_round(float(t))
        assert eng.total_parent_changes > 0

    def test_hysteresis_reduces_churn(self):
        def churn(threshold):
            topo = grid_topology(5, 5, diagonal=True)
            cfg = RoutingConfig(etx_noise_std=0.6, parent_switch_threshold=threshold)
            eng = build_engine(topo, config=cfg, seed=123)
            for t in range(1, 60):
                eng.beacon_round(float(t))
            return eng.total_parent_changes

        assert churn(2.0) < churn(0.0)

    def test_drift_changes_parents(self):
        """A link degrading over time eventually loses its children."""
        topo = topology_from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        # Link 3->1 starts excellent but degrades; 3->2 stays mediocre.
        models = {
            (1, 0): BernoulliLink(0.05), (0, 1): BernoulliLink(0.05),
            (2, 0): BernoulliLink(0.05), (0, 2): BernoulliLink(0.05),
            (3, 1): DriftingLink(0.35, amplitude=0.35, period=200.0),
            (1, 3): BernoulliLink(0.05),
            (3, 2): BernoulliLink(0.2), (2, 3): BernoulliLink(0.05),
        }
        cfg = RoutingConfig(etx_noise_std=0.0, etx_alpha=1.0, parent_switch_threshold=0.1)
        eng = build_engine(topo, models=models, config=cfg)
        parents_over_time = []
        for t in range(0, 200, 5):
            eng.beacon_round(float(t))
            parents_over_time.append(eng.parent(3))
        assert len(set(parents_over_time)) > 1  # switched at least once

    def test_data_driven_updates_shift_estimates(self):
        topo = line_topology(3)
        cfg = RoutingConfig(data_driven_updates=True, data_alpha=0.5)
        eng = build_engine(topo, config=cfg)
        before = eng.estimated_etx(1, 0)
        for _ in range(10):
            eng.on_data_sample(1, 0, attempts=8, time=1.0)
        assert eng.estimated_etx(1, 0) > before

    def test_data_driven_disabled(self):
        topo = line_topology(3)
        cfg = RoutingConfig(data_driven_updates=False)
        eng = build_engine(topo, config=cfg)
        before = eng.estimated_etx(1, 0)
        eng.on_data_sample(1, 0, attempts=20, time=1.0)
        assert eng.estimated_etx(1, 0) == before


class TestChurnAccounting:
    def test_churn_rate_normalization(self):
        topo = grid_topology(3, 3, diagonal=True)
        cfg = RoutingConfig(etx_noise_std=1.0, parent_switch_threshold=0.0)
        eng = build_engine(topo, config=cfg)
        for t in range(1, 30):
            eng.beacon_round(float(t))
        changes = eng.total_parent_changes
        assert eng.churn_rate(29.0) == pytest.approx(changes / (8 * 29.0))

    def test_parent_change_log_records_transitions(self):
        topo = grid_topology(4, 4, diagonal=True)
        cfg = RoutingConfig(etx_noise_std=1.0, parent_switch_threshold=0.0)
        eng = build_engine(topo, config=cfg)
        for t in range(1, 25):
            eng.beacon_round(float(t))
        for change in eng.parent_change_log:
            assert change.new_parent != change.old_parent
            assert change.node != topo.sink


class TestSimIntegration:
    def test_attach_schedules_beacons(self):
        topo = grid_topology(3, 3)
        eng = build_engine(topo, config=RoutingConfig(beacon_period=1.0))
        sim = Simulator()
        eng.attach(sim)
        sim.run_until(10.0)
        assert eng.beacon_rounds >= 8


class TestConfigValidation:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RoutingConfig(beacon_period=0.0)
        with pytest.raises(ValueError):
            RoutingConfig(etx_alpha=0.0)
        with pytest.raises(ValueError):
            RoutingConfig(etx_alpha=1.5)
        with pytest.raises(ValueError):
            RoutingConfig(etx_noise_std=-1.0)
        with pytest.raises(ValueError):
            RoutingConfig(data_alpha=2.0)
