"""Tests for the ARQ MAC layer."""

import pytest

from repro.net.link import BernoulliLink, Channel
from repro.net.mac import ArqMac, MacConfig, MacResult
from repro.net.topology import line_topology
from repro.utils.rng import RngRegistry


def make_channel(forward_loss, reverse_loss=0.0, seed=1):
    topo = line_topology(2)
    models = {(1, 0): BernoulliLink(forward_loss), (0, 1): BernoulliLink(reverse_loss)}
    return Channel(topo, models, RngRegistry(seed))


class TestMacConfig:
    def test_defaults(self):
        cfg = MacConfig()
        assert cfg.max_attempts == 31
        assert not cfg.ack_losses

    def test_validation(self):
        with pytest.raises(ValueError):
            MacConfig(max_retries=-1)
        with pytest.raises(ValueError):
            MacConfig(tx_time=0.0)
        with pytest.raises(ValueError):
            MacConfig(retry_interval=-0.1)


class TestMacResult:
    def test_receiver_retransmissions(self):
        r = MacResult(attempts=4, first_received_attempt=3, acked=True, end_time=1.0)
        assert r.received
        assert r.receiver_retransmissions == 2

    def test_failed_exchange(self):
        r = MacResult(attempts=5, first_received_attempt=None, acked=False, end_time=1.0)
        assert not r.received
        assert r.receiver_retransmissions is None


class TestArqPerfectLink:
    def test_single_attempt_on_perfect_link(self):
        mac = ArqMac(make_channel(0.0), MacConfig(max_retries=5))
        result = mac.send(1, 0, 0.0)
        assert result.attempts == 1
        assert result.first_received_attempt == 1
        assert result.acked
        assert result.end_time == pytest.approx(mac.config.tx_time)

    def test_always_fails_on_dead_link(self):
        mac = ArqMac(make_channel(1.0), MacConfig(max_retries=3))
        result = mac.send(1, 0, 0.0)
        assert result.attempts == 4  # 1 + 3 retries
        assert not result.received
        assert not result.acked


class TestArqLossyLink:
    def test_attempts_geometric_mean(self):
        """Mean attempts on a p-loss link ~ 1/(1-p) with generous retries."""
        mac = ArqMac(make_channel(0.5, seed=11), MacConfig(max_retries=50))
        n = 3000
        attempts = [mac.send(1, 0, float(i)).attempts for i in range(n)]
        mean = sum(attempts) / n
        assert abs(mean - 2.0) < 0.15

    def test_retry_cap_respected(self):
        mac = ArqMac(make_channel(0.9, seed=12), MacConfig(max_retries=2))
        for i in range(200):
            result = mac.send(1, 0, float(i))
            assert result.attempts <= 3

    def test_delivery_rate_after_retries(self):
        """P(delivered) = 1 - p^(max_attempts)."""
        p = 0.6
        retries = 4
        mac = ArqMac(make_channel(p, seed=13), MacConfig(max_retries=retries))
        n = 5000
        delivered = sum(1 for i in range(n) if mac.send(1, 0, float(i)).received)
        expected = 1 - p ** (retries + 1)
        assert abs(delivered / n - expected) < 0.02

    def test_timing_advances_per_attempt(self):
        mac = ArqMac(make_channel(1.0), MacConfig(max_retries=2, tx_time=0.01, retry_interval=0.04))
        result = mac.send(1, 0, 10.0)
        # 3 failed attempts, each tx_time + retry_interval
        assert result.end_time == pytest.approx(10.0 + 3 * 0.05)


class TestAckLosses:
    def test_perfect_acks_equal_first_received(self):
        mac = ArqMac(make_channel(0.4, seed=20), MacConfig(max_retries=30))
        for i in range(500):
            r = mac.send(1, 0, float(i))
            if r.acked:
                assert r.attempts == r.first_received_attempt

    def test_lossy_acks_cause_extra_attempts(self):
        """With lossy ACKs the sender keeps transmitting after first reception."""
        cfg = MacConfig(max_retries=30, ack_losses=True)
        mac = ArqMac(make_channel(0.1, reverse_loss=0.5, seed=21), cfg)
        extra = 0
        received = 0
        for i in range(2000):
            r = mac.send(1, 0, float(i))
            if r.received:
                received += 1
                extra += r.attempts - r.first_received_attempt
        assert received > 0
        assert extra / received > 0.3  # duplicates happen routinely

    def test_first_received_attempt_still_geometric_under_ack_loss(self):
        """Receiver-side first-arrival attempt depends only on the forward link."""
        cfg = MacConfig(max_retries=60, ack_losses=True)
        mac = ArqMac(make_channel(0.5, reverse_loss=0.5, seed=22), cfg)
        samples = []
        for i in range(4000):
            r = mac.send(1, 0, float(i))
            if r.received:
                samples.append(r.first_received_attempt)
        mean = sum(samples) / len(samples)
        assert abs(mean - 2.0) < 0.15  # geometric with success 0.5
