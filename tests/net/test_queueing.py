"""Tests for the per-node transmit-queue model."""

import pytest

from repro.net.link import BernoulliLink, Channel, uniform_loss_assigner
from repro.net.mac import MacConfig
from repro.net.routing import RoutingConfig
from repro.net.simulation import CollectionSimulation, SimulationConfig
from repro.net.topology import line_topology, topology_from_edges
from repro.utils.rng import RngRegistry


def star_into_chain(leaves=6):
    """Leaves 2..n feed node 1, which relays to sink 0 — a contention point."""
    edges = [(0, 1)] + [(1, leaf) for leaf in range(2, 2 + leaves)]
    return topology_from_edges(edges)


def run(topo, *, seed=91, duration=60.0, traffic_period=0.3, queue_capacity=16,
        max_retries=10, loss=0.3):
    models = {}
    for u, v in topo.directed_edges():
        models[(u, v)] = BernoulliLink(loss)
    channel = Channel(topo, models, RngRegistry(seed))
    sim = CollectionSimulation(
        topo,
        seed=seed,
        config=SimulationConfig(
            duration=duration,
            traffic_period=traffic_period,
            queue_capacity=queue_capacity,
            mac=MacConfig(max_retries=max_retries),
            routing=RoutingConfig(etx_noise_std=0.0),
        ),
        channel=channel,
    )
    return sim.run()


class TestSerialService:
    def test_relay_exchanges_never_overlap(self):
        """Node 1's hop exchanges are serialized in time."""
        result = run(star_into_chain(), traffic_period=0.5)
        # Reconstruct node 1's exchange windows from hop records.
        windows = []
        for p in result.packets:
            for h in p.hops:
                if h.sender == 1:
                    windows.append(h)
        assert len(windows) > 20
        # Each hop record holds its end time; starts are not recorded, but
        # serialized service means end times are strictly increasing in
        # service order and no two exchanges share an end time.
        ends = sorted(h.time for h in windows)
        assert len(set(ends)) == len(ends)

    def test_congestion_delays_delivery(self):
        """Offered load beyond the relay's service rate -> queueing delay."""
        def mean_latency(period):
            result = run(
                star_into_chain(8), traffic_period=period, duration=80.0
            )
            delivered = result.delivered_packets
            lat = [p.delivered_at - p.created_at for p in delivered]
            return sum(lat) / len(lat)

        assert mean_latency(0.12) > mean_latency(5.0) * 2.0

    def test_queue_overflow_drops(self):
        """A tiny queue at the relay tail-drops under burst load."""
        result = run(
            star_into_chain(10),
            traffic_period=0.1,
            queue_capacity=2,
            duration=40.0,
            max_retries=30,
            loss=0.5,  # long exchanges -> queue builds
        )
        assert result.ground_truth.drop_reasons.get("queue_overflow", 0) > 0

    def test_large_queue_no_overflow_at_light_load(self):
        result = run(star_into_chain(), traffic_period=5.0, duration=60.0)
        assert result.ground_truth.drop_reasons.get("queue_overflow", 0) == 0
        assert result.delivery_ratio > 0.95

    def test_queue_capacity_validated(self):
        with pytest.raises(ValueError):
            SimulationConfig(queue_capacity=0)


class TestQueueAndDophy:
    def test_dophy_unaffected_by_contention(self):
        """Queueing shifts timing but never corrupts annotation evidence."""
        from repro.core.dophy import DophySystem

        dophy = DophySystem()
        topo = star_into_chain()
        models = {e: BernoulliLink(0.25) for e in topo.directed_edges()}
        channel = Channel(topo, models, RngRegistry(92))
        sim = CollectionSimulation(
            topo,
            seed=92,
            config=SimulationConfig(
                duration=120.0,
                traffic_period=0.5,
                mac=MacConfig(max_retries=10),
                routing=RoutingConfig(etx_noise_std=0.0),
            ),
            channel=channel,
            observers=[dophy],
        )
        result = sim.run()
        report = dophy.report()
        assert report.decode_failures == 0
        truth = result.ground_truth.true_loss_map(kind="empirical")
        est = report.estimates[(1, 0)]
        assert est.n_samples > 300
        assert abs(est.loss - truth[(1, 0)]) < 0.05
