"""Tests for node failure schedules and their simulation effects."""

import numpy as np
import pytest

from repro.net.failures import FailureEvent, FailurePlan, random_failure_plan
from repro.net.link import uniform_loss_assigner
from repro.net.routing import RoutingConfig
from repro.net.simulation import CollectionSimulation, SimulationConfig
from repro.net.topology import grid_topology, line_topology, topology_from_edges


class TestFailureEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            FailureEvent(1.0, 2, "explode")
        with pytest.raises(ValueError):
            FailureEvent(-1.0, 2, "fail")


class TestFailurePlan:
    def test_orders_events(self):
        plan = FailurePlan(
            [FailureEvent(50.0, 1, "fail"), FailureEvent(60.0, 1, "recover"),
             FailureEvent(10.0, 2, "fail"), FailureEvent(20.0, 2, "recover")],
            sink=0,
        )
        assert [e.time for e in plan] == [10.0, 20.0, 50.0, 60.0]
        assert plan.nodes_involved() == {1, 2}

    def test_sink_cannot_fail(self):
        with pytest.raises(ValueError):
            FailurePlan([FailureEvent(1.0, 0, "fail")], sink=0)

    def test_double_fail_rejected(self):
        with pytest.raises(ValueError):
            FailurePlan(
                [FailureEvent(1.0, 1, "fail"), FailureEvent(2.0, 1, "fail")],
                sink=0,
            )

    def test_recover_without_fail_rejected(self):
        with pytest.raises(ValueError):
            FailurePlan([FailureEvent(1.0, 1, "recover")], sink=0)

    def test_downtime_intervals(self):
        plan = FailurePlan(
            [FailureEvent(10.0, 1, "fail"), FailureEvent(30.0, 1, "recover"),
             FailureEvent(50.0, 1, "fail")],
            sink=0,
        )
        assert plan.downtime_intervals(1, horizon=100.0) == [(10.0, 30.0), (50.0, 100.0)]
        assert plan.downtime_intervals(9, horizon=100.0) == []


class TestRandomPlan:
    def test_generates_requested_failures(self):
        topo = grid_topology(4, 4)
        rng = np.random.default_rng(1)
        plan = random_failure_plan(
            topo, rng, num_failures=5, duration=300.0, mean_downtime=30.0
        )
        fails = [e for e in plan if e.kind == "fail"]
        assert len(fails) == 5
        assert all(e.node != 0 for e in plan)

    def test_no_overlapping_episodes_per_node(self):
        topo = line_topology(4)  # few candidates forces reuse
        rng = np.random.default_rng(2)
        plan = random_failure_plan(
            topo, rng, num_failures=6, duration=500.0, mean_downtime=20.0
        )
        for node in plan.nodes_involved():
            intervals = plan.downtime_intervals(node, horizon=2000.0)
            for (a, b), (c, d) in zip(intervals, intervals[1:]):
                assert b <= c

    def test_validation(self):
        topo = line_topology(3)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_failure_plan(topo, rng, num_failures=-1, duration=10.0, mean_downtime=1.0)


class TestSimulationWithFailures:
    def make_sim(self, plan, topo=None, duration=120.0):
        topo = topo or grid_topology(3, 3, diagonal=True)
        return CollectionSimulation(
            topo,
            seed=9,
            config=SimulationConfig(
                duration=duration,
                traffic_period=2.0,
                routing=RoutingConfig(etx_noise_std=0.0),
            ),
            link_assigner=uniform_loss_assigner(0.02, 0.1),
            failure_plan=plan,
        )

    def test_dead_node_generates_nothing(self):
        topo = grid_topology(3, 3, diagonal=True)
        plan = FailurePlan(
            [FailureEvent(30.0, 8, "fail"), FailureEvent(90.0, 8, "recover")],
            sink=0,
        )
        sim = self.make_sim(plan, topo)
        result = sim.run()
        times = [p.created_at for p in result.packets if p.origin == 8]
        assert not any(30.0 <= t < 90.0 for t in times)
        assert any(t < 30.0 for t in times)
        assert any(t >= 90.0 for t in times)

    def test_routes_reform_around_dead_node(self):
        # Line 0-1-2-3 with a *bad* bypass link 1-3: node 3 initially
        # routes through 2; node 2's death forces the direct 3 -> 1 hop.
        from repro.net.link import BernoulliLink, Channel
        from repro.utils.rng import RngRegistry

        topo = topology_from_edges([(0, 1), (1, 2), (2, 3), (1, 3)])
        models = {}
        for u, v in topo.directed_edges():
            loss = 0.6 if {u, v} == {1, 3} else 0.05
            models[(u, v)] = BernoulliLink(loss)
        channel = Channel(topo, models, RngRegistry(9))
        plan = FailurePlan(
            [FailureEvent(40.0, 2, "fail"), FailureEvent(80.0, 2, "recover")],
            sink=0,
        )
        sim = CollectionSimulation(
            topo,
            seed=9,
            config=SimulationConfig(
                duration=120.0,
                traffic_period=2.0,
                routing=RoutingConfig(etx_noise_std=0.0),
            ),
            channel=channel,
            failure_plan=plan,
        )
        result = sim.run()
        before = [
            p for p in result.delivered_packets
            if p.origin == 3 and p.created_at < 40.0
        ]
        assert before and all(2 in p.path for p in before)
        during = [
            p for p in result.delivered_packets
            if p.origin == 3 and 41.0 <= p.created_at < 79.0
        ]
        assert during, "node 3 should still deliver during the outage"
        assert all(2 not in p.path for p in during)
        # Failure churn shows up in the parent-change log.
        assert any(c.node == 3 for c in result.routing.parent_change_log)

    def test_packets_drop_when_cut_off(self):
        # Chain: node 2 is the only route for node 3.
        topo = line_topology(4)
        plan = FailurePlan(
            [FailureEvent(30.0, 2, "fail"), FailureEvent(90.0, 2, "recover")],
            sink=0,
        )
        sim = self.make_sim(plan, topo)
        result = sim.run()
        outage = [
            p for p in result.packets if p.origin == 3 and 31.0 <= p.created_at < 89.0
        ]
        assert outage
        assert all(not p.delivered for p in outage)
        reasons = {p.drop_reason for p in outage if p.dropped}
        assert reasons <= {"retries", "node_failed", "no_route", "ttl"}
        # After recovery, traffic flows again.
        after = [
            p for p in result.packets if p.origin == 3 and p.created_at > 95.0
        ]
        assert any(p.delivered for p in after)

    def test_dead_receiver_consumes_no_channel_draws(self):
        topo = line_topology(3)
        plan = FailurePlan(
            [FailureEvent(20.0, 1, "fail"), FailureEvent(100.0, 1, "recover")],
            sink=0,
        )
        sim = self.make_sim(plan, topo, duration=90.0)
        result = sim.run()
        # Frames sent to node 1 during its downtime are not channel draws,
        # so the empirical loss of (2,1) reflects only real transmissions.
        emp = result.channel.empirical_loss(2, 1)
        if emp is not None:
            assert emp < 0.3  # configured loss <= 0.1 plus noise margin

    def test_sink_failure_rejected_by_routing(self):
        topo = line_topology(3)
        sim = self.make_sim(None, topo, duration=10.0)
        with pytest.raises(ValueError):
            sim.routing.set_alive(0, False, 0.0)


class TestFailureScheduleBindings:
    """Regression: failure events are scheduled with explicit args, not
    loop-variable-capturing closures. A late-binding lambda over the plan
    loop would apply the *last* entry's node/kind to every event, so each
    node's outage window must match its own plan entry exactly."""

    @pytest.mark.parametrize("engine", ["event", "array"])
    def test_each_event_binds_its_own_node_and_kind(self, engine):
        topo = grid_topology(3, 3, diagonal=True)
        plan = FailurePlan(
            [
                FailureEvent(10.0, 3, "fail"),
                FailureEvent(20.0, 5, "fail"),
                FailureEvent(40.0, 3, "recover"),
                FailureEvent(50.0, 5, "recover"),
            ],
            sink=0,
        )
        sim = CollectionSimulation(
            topo,
            seed=9,
            config=SimulationConfig(
                duration=70.0,
                traffic_period=2.0,
                engine=engine,
                routing=RoutingConfig(etx_noise_std=0.0),
            ),
            link_assigner=uniform_loss_assigner(0.02, 0.1),
            failure_plan=plan,
        )
        result = sim.run()
        # Dead nodes generate nothing, so each node's creation gap must
        # cover exactly its own outage window — staggered windows per
        # node distinguish correct bindings from a shared stale capture.
        for node, lo, hi in [(3, 10.0, 40.0), (5, 20.0, 50.0)]:
            times = [p.created_at for p in result.packets if p.origin == node]
            assert not any(lo <= t < hi for t in times), (node, times)
            assert any(t < lo for t in times), node
            assert any(t >= hi for t in times), node
