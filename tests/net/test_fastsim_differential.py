"""Differential oracle: the array engine must BE the event engine.

``engine="array"`` (net/fastsim.py) replaces the simulator's three hot
paths — event queue, MAC frame draws, beacon ETX sampling — with batched
kernels, under the contract that for an identical seed the *observable
stream is bit-identical* to the reference event engine. This suite is
the contract's enforcement: every scenario family in the matrix (tree
and mesh topologies × link classes × node failures × packet-fault
injection) runs once per engine and is compared field by field —
packets and their per-hop traces, ground-truth link usage, routing
churn and ETX state, per-link RNG draw counts, and the downstream
``PerLinkEstimator`` evidence a Dophy sink accumulates.

Equality here is exact (``==`` on floats), not approximate: the array
engine earns its speed purely from batching, never from reordering or
re-rounding. Tolerances would hide exactly the class of bug this suite
exists to catch.
"""

import inspect

import pytest

from repro.core import DophyConfig, DophySystem
from repro.net.faults import FaultPlan, SinkOutage
from repro.net.fastsim import FastArqMac
from repro.net.routing import RoutingConfig
from repro.sanitize import diff_fingerprints, sanitize_run
from repro.workloads.scenarios import (
    bursty_rgg_scenario,
    drifting_line_scenario,
    drifting_rgg_scenario,
    dynamic_rgg_scenario,
    failing_rgg_scenario,
    interference_rgg_scenario,
    line_scenario,
    static_grid_scenario,
)

#: (scenario factory, kwargs, config overrides) — tree and mesh
#: topologies crossed with every link-model class the simulator ships,
#: plus node failures, heavy queue contention, and beacon churn fast
#: enough that routes flip between a packet's hops. Durations are
#: trimmed so the whole matrix stays a fast tier-1 suite.
MATRIX = [
    ("line_tree", line_scenario, {"num_nodes": 6}, {}),
    ("grid_mesh", static_grid_scenario, {"rows": 4, "cols": 4}, {}),
    ("rgg_dynamic", dynamic_rgg_scenario, {"num_nodes": 16}, {}),
    ("rgg_bursty_gilbert_elliott", bursty_rgg_scenario, {"num_nodes": 12}, {}),
    ("rgg_drifting", drifting_rgg_scenario, {"num_nodes": 12}, {}),
    ("line_drifting", drifting_line_scenario, {"num_nodes": 6}, {}),
    ("rgg_node_failures", failing_rgg_scenario, {"num_nodes": 14}, {}),
    ("rgg_interference", interference_rgg_scenario, {"num_nodes": 14}, {}),
    # Mid-journey rerouting: beacons every 0.4 s with near-zero
    # hysteresis, so parents flip while packets are in flight and the
    # batched forwarder must fall back at every recompute horizon.
    (
        "rgg_rerouting_mid_journey",
        dynamic_rgg_scenario,
        {"num_nodes": 16},
        {
            "routing": RoutingConfig(
                beacon_period=0.4, parent_switch_threshold=0.05
            )
        },
    ),
    # Queue contention: 20× the default offered load, so radios stay
    # busy, transmit queues fill, and tail drops occur — FIFO order and
    # overflow decisions must survive batching exactly.
    (
        "rgg_queue_contention",
        dynamic_rgg_scenario,
        {"num_nodes": 16},
        {"traffic_period": 0.5},
    ),
]

SEEDS = (13, 1107)


def _run(factory, kwargs, engine, seed, observer_factory=None, cfg=None):
    scenario = factory(**kwargs).with_config(
        duration=60.0, engine=engine, **(cfg or {})
    )
    observers = [observer_factory()] if observer_factory else []
    simulation = scenario.make_simulation(seed, observers=observers)
    result = simulation.run()
    return result, observers[0] if observers else None


def _assert_results_identical(event, array):
    # Packet streams: dataclass equality covers origin/seqno/timestamps,
    # drop reasons, and every HopRecord (sender, receiver, attempts,
    # completion time, success) bit for bit, in creation order.
    assert array.packets == event.packets
    assert array.events_processed == event.events_processed
    assert array.duration == event.duration

    # Ground truth: per-link exchange/frame/reception tallies and the
    # full per-exchange attempt-number samples.
    assert dict(array.ground_truth.link_usage) == dict(event.ground_truth.link_usage)
    assert array.ground_truth.packets_generated == event.ground_truth.packets_generated
    assert array.ground_truth.packets_delivered == event.ground_truth.packets_delivered
    assert dict(array.ground_truth.drop_reasons) == dict(event.ground_truth.drop_reasons)

    # Routing: identical churn history, final tree, and EWMA ETX state.
    assert array.routing.parent_change_log == event.routing.parent_change_log
    assert array.routing.tree_snapshot() == event.routing.tree_snapshot()
    assert array.routing.beacon_rounds == event.routing.beacon_rounds
    for edge in event.topology.directed_edges():
        assert array.routing.estimated_etx(*edge) == event.routing.estimated_etx(*edge)

    # Channel: the engines consumed the per-edge RNG streams identically.
    for edge in event.topology.directed_edges():
        assert array.channel.draws(*edge) == event.channel.draws(*edge)
        assert array.channel.empirical_loss(*edge) == event.channel.empirical_loss(*edge)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "factory,kwargs,cfg",
    [(f, k, c) for _, f, k, c in MATRIX],
    ids=[m[0] for m in MATRIX],
)
def test_engines_bit_identical(factory, kwargs, cfg, seed):
    event, _ = _run(factory, kwargs, "event", seed, cfg=cfg)
    array, _ = _run(factory, kwargs, "array", seed, cfg=cfg)
    _assert_results_identical(event, array)


#: Each array-engine acceleration is independently switchable; with any
#: one disabled (and with all disabled) the engine must still be the
#: oracle, bit for bit — a knob may change *speed*, never the stream.
KNOB_SETS = [
    {"batch_forwarding": False},
    {"incremental_spt": False},
    {"ge_chain_replay": False},
    {"batch_forwarding": False, "incremental_spt": False, "ge_chain_replay": False},
]


@pytest.mark.parametrize(
    "knobs", KNOB_SETS, ids=["-".join(k) for k in KNOB_SETS]
)
@pytest.mark.parametrize(
    "factory,kwargs",
    [
        (dynamic_rgg_scenario, {"num_nodes": 16}),
        (bursty_rgg_scenario, {"num_nodes": 12}),
        (failing_rgg_scenario, {"num_nodes": 14}),
    ],
    ids=["rgg_dynamic", "rgg_bursty", "rgg_failures"],
)
def test_each_knob_individually_pinned(factory, kwargs, knobs):
    event, _ = _run(factory, kwargs, "event", 13)
    array, _ = _run(factory, kwargs, "array", 13, cfg=knobs)
    _assert_results_identical(event, array)


@pytest.mark.parametrize("seed", SEEDS)
def test_dophy_estimator_evidence_identical(seed):
    """The evidence a Dophy sink decodes — and the MLE it solves — is a
    pure function of the observable stream, so it must match too."""
    event, dophy_event = _run(
        dynamic_rgg_scenario, {"num_nodes": 16}, "event", seed, DophySystem
    )
    array, dophy_array = _run(
        dynamic_rgg_scenario, {"num_nodes": 16}, "array", seed, DophySystem
    )
    _assert_results_identical(event, array)
    report_event = dophy_event.report()
    report_array = dophy_array.report()
    assert report_array == report_event
    links = dophy_event.estimator.links()
    assert dophy_array.estimator.links() == links
    for link in links:
        a = dophy_array.estimator.estimate(link)
        b = dophy_event.estimator.estimate(link)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.loss == b.loss
            assert a.n_samples == b.n_samples


@pytest.mark.parametrize("seed", SEEDS)
def test_fault_injection_identical(seed):
    """Packet-fault injection (bit corruption, truncation, duplicates,
    sink outages) draws from its own streams, so it perturbs neither
    engine — and its observable effects must coincide."""

    def faulty_dophy():
        return DophySystem(
            DophyConfig(),
            faults=FaultPlan(
                seed=seed,
                corruption_rate=0.05,
                truncation_rate=0.05,
                duplication_rate=0.05,
                sink_outages=[SinkOutage(20.0, 30.0)],
            ),
        )

    event, dophy_event = _run(
        dynamic_rgg_scenario, {"num_nodes": 16}, "event", seed, faulty_dophy
    )
    array, dophy_array = _run(
        dynamic_rgg_scenario, {"num_nodes": 16}, "array", seed, faulty_dophy
    )
    _assert_results_identical(event, array)
    report_event = dophy_event.report()
    report_array = dophy_array.report()
    assert report_array == report_event
    assert report_event.decode_failures + report_event.sink_outage_discards > 0


def test_gilbert_elliott_chain_replay_classification():
    """GE chains are replayed against buffered uniforms (two per attempt,
    in the exact transition-then-loss order the scalar oracle draws), so
    every GE edge is bufferable by default; with the knob off, FastArqMac
    must route them all through the scalar fallback."""
    base = bursty_rgg_scenario(num_nodes=12).with_config(
        duration=60.0, engine="array"
    )
    simulation = base.make_simulation(seed=3)
    assert isinstance(simulation.mac, FastArqMac)
    edges = len(list(simulation.topology.directed_edges()))
    assert simulation.mac.bufferable_edges == edges
    fallback = base.with_config(ge_chain_replay=False).make_simulation(seed=3)
    assert isinstance(fallback.mac, FastArqMac)
    assert fallback.mac.bufferable_edges == 0


def test_ack_losses_fall_back_entirely():
    """With lossy ACKs the reverse link's draws interleave into the
    exchange; the array engine keeps correctness by running the oracle
    MAC wholesale — and stays bit-identical."""
    from repro.net.mac import MacConfig

    base = dynamic_rgg_scenario(num_nodes=12).with_config(
        duration=60.0, mac=MacConfig(ack_losses=True)
    )
    event = base.make_simulation(seed=5).run()
    sim_array = base.with_config(engine="array").make_simulation(seed=5)
    assert isinstance(sim_array.mac, FastArqMac)
    assert sim_array.mac.bufferable_edges == 0
    array = sim_array.run()
    _assert_results_identical(event, array)


@pytest.mark.parametrize("seed", SEEDS)
def test_engines_fingerprint_equivalent(seed):
    """Runtime-sanitizer form of the bit-identity contract: per-stream
    RNG value sequences match across engines (batching tolerated via the
    block-tail allowance; an extra *call* would be flagged)."""
    with sanitize_run("event") as san_event:
        _run(dynamic_rgg_scenario, {"num_nodes": 16}, "event", seed)
    with sanitize_run("array") as san_array:
        _run(dynamic_rgg_scenario, {"num_nodes": 16}, "array", seed)
    fp_event = san_event.fingerprint()
    fp_array = san_array.fingerprint()
    divergences = diff_fingerprints(fp_event, fp_array, mode="stream")
    assert divergences == [], "\n".join(d.describe() for d in divergences)
    # Same engine, same seed: strict call-interleaving equality too.
    with sanitize_run("array-again") as san_again:
        _run(dynamic_rgg_scenario, {"num_nodes": 16}, "array", seed)
    assert diff_fingerprints(fp_array, san_again.fingerprint(),
                             mode="global") == []


@pytest.mark.parametrize("seed", SEEDS)
def test_batched_pop_profile_fingerprints(seed):
    """Batched forwarding elides and reorders event pops by design, so
    its runs carry the ``batched-forwarding`` pop profile: stream-mode
    diffs against any other profile compare draws and effects strictly
    but skip the pop sequence, while same-profile runs stay strictly
    pop-identical in global mode."""
    with sanitize_run("array-batched") as san_batched:
        _run(dynamic_rgg_scenario, {"num_nodes": 16}, "array", seed)
    with sanitize_run("array-per-hop") as san_per_hop:
        _run(
            dynamic_rgg_scenario,
            {"num_nodes": 16},
            "array",
            seed,
            cfg={"batch_forwarding": False},
        )
    fp_batched = san_batched.fingerprint()
    fp_per_hop = san_per_hop.fingerprint()
    assert fp_batched.pop_profile == "batched-forwarding"
    assert fp_per_hop.pop_profile == "event"
    # Batching genuinely changes the pop sequence (fewer real events)...
    assert fp_batched.pops != fp_per_hop.pops
    # ...yet the observable stream contract still holds across profiles.
    divergences = diff_fingerprints(fp_per_hop, fp_batched, mode="stream")
    assert divergences == [], "\n".join(d.describe() for d in divergences)
    # Same profile, same seed: strict pop-for-pop equality.
    with sanitize_run("array-batched-again") as san_again:
        _run(dynamic_rgg_scenario, {"num_nodes": 16}, "array", seed)
    assert diff_fingerprints(fp_batched, san_again.fingerprint(),
                             mode="global") == []


def test_injected_extra_draw_is_named_with_site_and_index(monkeypatch):
    """Acceptance criterion: smuggle one extra draw into the array fast
    path and the sanitizer report must name the exact file:line of the
    smuggled call, its stream, and the draw index."""
    original_send = FastArqMac.send
    state = {}

    def tampered_send(self, sender, receiver, start_time):
        plan = self._plans.get((sender, receiver))
        if plan is not None and "line" not in state:
            state["line"] = inspect.currentframe().f_lineno + 2
            state["stream"] = getattr(plan.rng, "stream_name", None)
            plan.rng.random()  # the smuggled extra draw
        return original_send(self, sender, receiver, start_time)

    # Per-hop forwarding keeps the "event" pop profile, so the final
    # cross-engine stream diff below still compares pop sequences (the
    # channel the behaviour shift shows up in: the extra draw changes
    # attempt counts, hence the event schedule).
    per_hop = {"batch_forwarding": False}
    with sanitize_run("array-clean") as clean:
        _run(dynamic_rgg_scenario, {"num_nodes": 16}, "array", 13, cfg=per_hop)
    monkeypatch.setattr(FastArqMac, "send", tampered_send)
    with sanitize_run("array-tampered") as tampered:
        _run(dynamic_rgg_scenario, {"num_nodes": 16}, "array", 13, cfg=per_hop)

    divergences = diff_fingerprints(
        clean.fingerprint(), tampered.fingerprint(), mode="global"
    )
    assert divergences, "the smuggled draw must be caught"
    div = divergences[0]
    # MAC plans classify lazily, so the first plan-bearing send (where
    # the tamper fires) is an edge's *second* exchange: the smuggled
    # draw lands mid-sequence, where the clean run's draw at that global
    # index belongs to another stream. The diff then reports a
    # cross-stream call divergence — ``stream`` is ambiguous (None) but
    # the smuggled stream must still be named in the message.
    assert div.stream in (None, state["stream"])
    assert state["stream"] in div.message
    assert div.index is not None
    expected_site = f"test_fastsim_differential.py:{state['line']}"
    assert expected_site in (div.site_b or ""), div.describe()
    # The cross-engine (stream-mode) contract breaks too: downstream
    # behaviour shifted, so the matched-value prefix cannot cover both.
    with sanitize_run("event") as san_event:
        _run(dynamic_rgg_scenario, {"num_nodes": 16}, "event", 13)
    assert diff_fingerprints(
        san_event.fingerprint(), tampered.fingerprint(), mode="stream"
    ) != []


def test_bufferable_classification():
    """Bernoulli / drifting / interfered / GE links ride the buffered path."""
    for factory, kwargs in [
        (dynamic_rgg_scenario, {"num_nodes": 12}),
        (drifting_rgg_scenario, {"num_nodes": 12}),
        (interference_rgg_scenario, {"num_nodes": 12}),
        (bursty_rgg_scenario, {"num_nodes": 12}),
    ]:
        simulation = (
            factory(**kwargs)
            .with_config(duration=60.0, engine="array")
            .make_simulation(seed=3)
        )
        assert isinstance(simulation.mac, FastArqMac)
        edges = len(list(simulation.topology.directed_edges()))
        assert simulation.mac.bufferable_edges == edges
