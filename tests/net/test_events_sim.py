"""Tests for the event queue and simulation clock."""

import pytest

from repro.net.events import EventQueue
from repro.net.sim import Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        order = []
        q.push(3.0, lambda: order.append("c"))
        q.push(1.0, lambda: order.append("a"))
        q.push(2.0, lambda: order.append("b"))
        while (e := q.pop()) is not None:
            e.callback()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        q = EventQueue()
        order = []
        for i in range(5):
            q.push(1.0, lambda i=i: order.append(i))
        while (e := q.pop()) is not None:
            e.callback()
        assert order == [0, 1, 2, 3, 4]

    def test_cancellation_skips_event(self):
        q = EventQueue()
        fired = []
        handle = q.push(1.0, lambda: fired.append("x"))
        q.push(2.0, lambda: fired.append("y"))
        handle.cancel()
        assert len(q) == 1
        while (e := q.pop()) is not None:
            e.callback()
        assert fired == ["y"]

    def test_double_cancel_counts_once(self):
        q = EventQueue()
        handle = q.push(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert len(q) == 0

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        first.cancel()
        assert q.peek_time() == 5.0

    def test_empty_queue(self):
        q = EventQueue()
        assert q.pop() is None
        assert q.peek_time() is None
        assert not q

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError):
            EventQueue().push(0.0, "not callable")


class TestSimulator:
    def test_clock_advances_with_events(self):
        sim = Simulator()
        times = []
        sim.at(1.5, lambda: times.append(sim.now))
        sim.at(0.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [0.5, 1.5]

    def test_after_is_relative(self):
        sim = Simulator()
        seen = []
        sim.at(2.0, lambda: sim.after(3.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [5.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().after(-1.0, lambda: None)

    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        for t in [1.0, 2.0, 3.0, 4.0]:
            sim.at(t, lambda t=t: fired.append(t))
        sim.run_until(2.5)
        assert fired == [1.0, 2.0]
        assert sim.now == 2.5
        sim.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0, 4.0]

    def test_run_until_past_raises(self):
        sim = Simulator()
        sim.at(1.0, lambda: None)
        sim.run_until(5.0)
        with pytest.raises(ValueError):
            sim.run_until(2.0)

    def test_every_fires_periodically(self):
        sim = Simulator()
        fires = []
        sim.every(1.0, lambda: fires.append(sim.now))
        sim.run_until(5.5)
        assert fires == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_every_with_custom_start(self):
        sim = Simulator()
        fires = []
        sim.every(2.0, lambda: fires.append(sim.now), start=0.5)
        sim.run_until(5.0)
        assert fires == [0.5, 2.5, 4.5]

    def test_every_rejects_bad_period(self):
        with pytest.raises(ValueError):
            Simulator().every(0.0, lambda: None)

    def test_stop_interrupts_run(self):
        sim = Simulator()
        fired = []
        sim.at(1.0, lambda: (fired.append(1), sim.stop()))
        sim.at(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]
        sim.run()
        assert fired == [1, 2]

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in range(3):
            sim.at(float(t), lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_max_events(self):
        sim = Simulator()
        for t in range(10):
            sim.at(float(t), lambda: None)
        assert sim.run(max_events=4) == 4
        assert sim.pending_events == 6
