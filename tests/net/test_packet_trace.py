"""Tests for packet records and ground-truth tracing."""

import pytest

from repro.net.link import BernoulliLink, Channel
from repro.net.mac import MacResult
from repro.net.packet import HopRecord, Packet
from repro.net.topology import line_topology
from repro.net.trace import GroundTruth
from repro.utils.rng import RngRegistry


class TestHopRecord:
    def test_retransmissions(self):
        h = HopRecord(sender=3, receiver=2, attempts=4, time=1.0, delivered=True)
        assert h.retransmissions == 3
        assert h.link == (3, 2)


class TestPacket:
    def make_packet(self):
        p = Packet(origin=4, seqno=7, created_at=0.0)
        p.record_hop(4, 3, attempts=2, time=0.1, delivered=True)
        p.record_hop(3, 1, attempts=1, time=0.2, delivered=True)
        p.record_hop(1, 0, attempts=5, time=0.3, delivered=True)
        return p

    def test_path_and_hops(self):
        p = self.make_packet()
        assert p.path == [4, 3, 1, 0]
        assert p.hop_count == 3
        assert p.total_transmissions == 8
        assert p.key == (4, 7)

    def test_failed_hop_excluded_from_path(self):
        p = Packet(origin=2, seqno=0, created_at=0.0)
        p.record_hop(2, 1, attempts=3, time=0.1, delivered=True)
        p.record_hop(1, 0, attempts=4, time=0.2, delivered=False)
        assert p.path == [2, 1]
        assert p.hop_count == 1
        assert p.total_transmissions == 7

    def test_delivery_state(self):
        p = self.make_packet()
        assert not p.delivered and not p.dropped
        p.delivered_at = 0.4
        assert p.delivered
        q = Packet(origin=1, seqno=0, created_at=0.0)
        q.dropped_at = 1.0
        q.drop_reason = "retries"
        assert q.dropped


class TestGroundTruth:
    def make_gt(self):
        topo = line_topology(3)
        models = {
            (1, 0): BernoulliLink(0.2), (0, 1): BernoulliLink(0.0),
            (2, 1): BernoulliLink(0.4), (1, 2): BernoulliLink(0.0),
        }
        channel = Channel(topo, models, RngRegistry(3))
        return GroundTruth(channel), channel

    def test_record_hop_accumulates(self):
        gt, _ = self.make_gt()
        gt.record_hop(1, 0, MacResult(3, 3, True, 1.0))
        gt.record_hop(1, 0, MacResult(1, 1, True, 2.0))
        gt.record_hop(1, 0, MacResult(4, None, False, 3.0))
        usage = gt.link_usage[(1, 0)]
        assert usage.exchanges == 3
        assert usage.frames_sent == 8
        assert usage.received == 2
        assert usage.retransmissions_observed == 2
        assert usage.hop_delivery_ratio == pytest.approx(2 / 3)
        assert usage.mean_retransmissions == pytest.approx(1.0)

    def test_unused_link_stats_none(self):
        gt, _ = self.make_gt()
        usage = gt.link_usage[(2, 1)]
        assert usage.hop_delivery_ratio is None
        assert usage.mean_retransmissions is None

    def test_delivery_counters(self):
        gt, _ = self.make_gt()
        p = Packet(origin=2, seqno=0, created_at=1.0)
        gt.record_generated(p)
        gt.record_delivered(p)
        q = Packet(origin=1, seqno=0, created_at=2.0)
        q.drop_reason = "ttl"
        gt.record_generated(q)
        gt.record_dropped(q)
        assert gt.packets_generated == 2
        assert gt.delivery_ratio == 0.5
        assert gt.drop_reasons["ttl"] == 1

    def test_empty_delivery_ratio_none(self):
        gt, _ = self.make_gt()
        assert gt.delivery_ratio is None

    def test_true_loss_kinds(self):
        gt, channel = self.make_gt()
        # Drive some frames through the channel so empirical exists.
        for i in range(2000):
            channel.transmit(1, 0, float(i))
        gt.record_hop(1, 0, MacResult(1, 1, True, 1.0))
        emp = gt.true_loss((1, 0), kind="empirical")
        model = gt.true_loss((1, 0), kind="model")
        assert abs(emp - 0.2) < 0.03
        assert model == pytest.approx(0.2)
        with pytest.raises(ValueError):
            gt.true_loss((1, 0), kind="exotic")

    def test_true_loss_map_covers_used_links_only(self):
        gt, channel = self.make_gt()
        channel.transmit(1, 0, 0.0)
        gt.record_hop(1, 0, MacResult(1, 1, True, 1.0))
        losses = gt.true_loss_map(kind="empirical")
        assert set(losses) == {(1, 0)}

    def test_observation_window(self):
        gt, _ = self.make_gt()
        gt.record_generated(Packet(origin=1, seqno=0, created_at=5.0))
        gt.record_hop(1, 0, MacResult(2, 2, True, 9.0))
        assert gt.observation_window == (5.0, 9.0)
