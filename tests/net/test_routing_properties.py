"""Property-based tests on routing invariants.

The tree must stay loop-free and sink-rooted no matter what sequence of
beacon rounds, data samples, and node failures hits it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.link import uniform_loss_assigner, Channel
from repro.net.routing import RoutingConfig, RoutingEngine
from repro.net.topology import grid_topology, random_geometric_topology
from repro.utils.rng import RngRegistry


def check_tree_invariants(engine, topo, *, allow_dead=()):
    """Every alive node reaches the sink without revisiting a node."""
    for node in topo.nodes:
        if node == topo.sink or node in allow_dead:
            continue
        seen = {node}
        current = node
        for _ in range(topo.num_nodes + 1):
            parent = engine.parent(current)
            if parent is None:
                break  # stale/unroutable is allowed; loops are not
            # Parents are always real neighbours.
            assert parent in topo.neighbors(current)
            if parent in seen:
                # Reaching the sink is fine; revisiting anything else = loop.
                raise AssertionError(f"routing loop at {node}: revisits {parent}")
            seen.add(parent)
            current = parent
            if current == topo.sink:
                break


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    noise=st.floats(min_value=0.0, max_value=2.0),
    rounds=st.integers(min_value=1, max_value=30),
)
def test_property_beacons_never_create_loops(seed, noise, rounds):
    topo = grid_topology(4, 4, diagonal=True)
    reg = RngRegistry(seed)
    channel = Channel.build(topo, uniform_loss_assigner(0.05, 0.4), reg)
    engine = RoutingEngine(
        topo, channel, reg,
        RoutingConfig(etx_noise_std=noise, parent_switch_threshold=0.0),
    )
    for t in range(rounds):
        engine.beacon_round(float(t))
        check_tree_invariants(engine, topo)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    data=st.data(),
)
def test_property_failures_never_create_loops(seed, data):
    topo = random_geometric_topology(20, seed=seed % 50)
    reg = RngRegistry(seed)
    channel = Channel.build(topo, uniform_loss_assigner(0.05, 0.3), reg)
    engine = RoutingEngine(
        topo, channel, reg, RoutingConfig(etx_noise_std=0.5)
    )
    dead = set()
    candidates = [n for n in topo.nodes if n != topo.sink]
    for t in range(12):
        action = data.draw(st.sampled_from(["beacon", "fail", "recover"]))
        if action == "beacon":
            engine.beacon_round(float(t))
        elif action == "fail":
            node = data.draw(st.sampled_from(candidates))
            if node not in dead:
                dead.add(node)
                engine.set_alive(node, False, float(t))
        else:
            if dead:
                node = data.draw(st.sampled_from(sorted(dead)))
                dead.discard(node)
                engine.set_alive(node, True, float(t))
        # Alive nodes may route through stale (dead) parents transiently;
        # the invariant that must always hold is loop-freedom.
        check_tree_invariants(engine, topo, allow_dead=dead)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    samples=st.lists(
        st.tuples(st.integers(0, 15), st.integers(1, 31)), max_size=40
    ),
)
def test_property_data_samples_never_create_loops(seed, samples):
    """Arbitrary data-driven ETX feedback keeps the tree consistent."""
    topo = grid_topology(4, 4, diagonal=True)
    reg = RngRegistry(seed)
    channel = Channel.build(topo, uniform_loss_assigner(0.05, 0.4), reg)
    engine = RoutingEngine(
        topo, channel, reg,
        RoutingConfig(etx_noise_std=0.3, data_alpha=0.5),
    )
    for i, (node, attempts) in enumerate(samples):
        parent = engine.parent(node)
        if node != topo.sink and parent is not None:
            engine.on_data_sample(node, parent, attempts, float(i))
        if i % 5 == 0:
            engine.beacon_round(float(i))
        check_tree_invariants(engine, topo)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    data=st.data(),
)
def test_property_spt_modes_identical_and_loop_free(seed, data):
    """The incremental (tree-seeded Bellman–Ford) solver and the full
    Dijkstra must agree bit for bit — same parents, same costs, same
    churn log — after *any* sequence of beacons, failures, recoveries and
    data samples, and neither may ever leave a parent cycle (the
    hardened ``_repair_loops`` guarantee)."""

    def build(mode):
        topo = random_geometric_topology(20, seed=seed % 50)
        reg = RngRegistry(seed)
        channel = Channel.build(topo, uniform_loss_assigner(0.05, 0.3), reg)
        engine = RoutingEngine(
            topo, channel, reg,
            RoutingConfig(etx_noise_std=0.5, data_alpha=0.5),
        )
        engine.set_spt_mode(mode)
        return topo, engine

    topo, full = build("full")
    _, incremental = build("incremental")
    dead = set()
    candidates = [n for n in topo.nodes if n != topo.sink]
    for t in range(14):
        action = data.draw(
            st.sampled_from(["beacon", "fail", "recover", "sample"])
        )
        if action == "beacon":
            full.beacon_round(float(t))
            incremental.beacon_round(float(t))
        elif action == "fail":
            node = data.draw(st.sampled_from(candidates))
            if node not in dead:
                dead.add(node)
                full.set_alive(node, False, float(t))
                incremental.set_alive(node, False, float(t))
        elif action == "recover":
            if dead:
                node = data.draw(st.sampled_from(sorted(dead)))
                dead.discard(node)
                full.set_alive(node, True, float(t))
                incremental.set_alive(node, True, float(t))
        else:
            node = data.draw(st.sampled_from(candidates))
            attempts = data.draw(st.integers(1, 31))
            parent = full.parent(node)
            if parent is not None:
                full.on_data_sample(node, parent, attempts, float(t))
                incremental.on_data_sample(node, parent, attempts, float(t))
        check_tree_invariants(full, topo, allow_dead=dead)
        check_tree_invariants(incremental, topo, allow_dead=dead)
        assert incremental.tree_snapshot() == full.tree_snapshot()
        assert incremental.parent_change_log == full.parent_change_log
        for node in topo.nodes:
            assert incremental.route_cost(node) == full.route_cost(node)
