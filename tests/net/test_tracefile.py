"""Tests for trace record/replay."""

import json

import pytest

from repro.analysis.metrics import mean_absolute_error
from repro.net.link import uniform_loss_assigner
from repro.net.mac import MacConfig
from repro.net.routing import RoutingConfig
from repro.net.simulation import CollectionSimulation, SimulationConfig
from repro.net.topology import line_topology
from repro.net.tracefile import (
    load_trace,
    replay_into_estimator,
    save_trace,
    truth_from_header,
)


@pytest.fixture(scope="module")
def run_result():
    sim = CollectionSimulation(
        line_topology(5),
        seed=141,
        config=SimulationConfig(
            duration=200.0, traffic_period=2.0,
            mac=MacConfig(max_retries=5),
            routing=RoutingConfig(etx_noise_std=0.0),
        ),
        link_assigner=uniform_loss_assigner(0.1, 0.35),
    )
    return sim.run()


class TestRoundTrip:
    def test_save_and_load(self, run_result, tmp_path):
        path = save_trace(run_result, tmp_path / "run.jsonl")
        header, packets = load_trace(path)
        assert header.num_nodes == 5
        assert header.sink == 0
        assert header.max_attempts == 6
        assert len(packets) == len(run_result.packets)

    def test_packet_fields_preserved(self, run_result, tmp_path):
        path = save_trace(run_result, tmp_path / "run.jsonl")
        _, packets = load_trace(path)
        originals = {p.key: p for p in run_result.packets}
        for tp in packets:
            orig = originals[(tp.origin, tp.seqno)]
            assert tp.created_at == orig.created_at
            assert tp.delivered == orig.delivered
            assert len(tp.hops) == len(orig.hops)
            for (s, r, a, d), h in zip(tp.hops, orig.hops):
                assert (s, r, a, d) == (h.sender, h.receiver, h.attempts, h.delivered)

    def test_truth_embedded(self, run_result, tmp_path):
        path = save_trace(run_result, tmp_path / "run.jsonl")
        header, _ = load_trace(path)
        truth = truth_from_header(header)
        live = run_result.ground_truth.true_loss_map()
        assert truth == pytest.approx(live)

    def test_truth_optional(self, run_result, tmp_path):
        path = save_trace(run_result, tmp_path / "bare.jsonl", include_truth=False)
        header, _ = load_trace(path)
        assert header.true_losses == {}


class TestReplay:
    def test_replay_matches_live_estimates(self, run_result, tmp_path):
        """Offline replay reproduces what an in-band system estimates."""
        path = save_trace(run_result, tmp_path / "run.jsonl")
        header, packets = load_trace(path)
        est = replay_into_estimator(header, packets)
        truth = truth_from_header(header)
        losses = {l: e.loss for l, e in est.estimates().items()}
        mae = mean_absolute_error(losses, truth)
        assert mae is not None and mae < 0.05

    def test_delivered_only_vs_all(self, run_result, tmp_path):
        path = save_trace(run_result, tmp_path / "run.jsonl")
        header, packets = load_trace(path)
        inband = replay_into_estimator(header, packets, delivered_only=True)
        outofband = replay_into_estimator(header, packets, delivered_only=False)
        n_in = sum(inband.n_samples(l) for l in inband.links())
        n_out = sum(outofband.n_samples(l) for l in outofband.links())
        assert n_out >= n_in  # dropped packets' early hops add evidence


class TestMalformedTraces:
    def test_missing_header(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text(json.dumps({"type": "packet", "origin": 1, "seqno": 0,
                                 "created_at": 0.0, "hops": []}) + "\n")
        with pytest.raises(ValueError, match="no header"):
            load_trace(p)

    def test_unknown_record_type(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text(json.dumps({"type": "mystery"}) + "\n")
        with pytest.raises(ValueError, match="unknown record type"):
            load_trace(p)

    def test_version_mismatch(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text(json.dumps({"type": "header", "format_version": 99}) + "\n")
        with pytest.raises(ValueError, match="format version"):
            load_trace(p)

    def test_blank_lines_tolerated(self, run_result, tmp_path):
        path = save_trace(run_result, tmp_path / "run.jsonl")
        content = path.read_text()
        path.write_text("\n" + content + "\n\n")
        header, packets = load_trace(path)
        assert len(packets) == len(run_result.packets)
