"""Edge-condition behaviours across the network stack."""

import pytest

from repro.net.link import uniform_loss_assigner
from repro.net.mac import MacConfig
from repro.net.routing import RoutingConfig
from repro.net.simulation import CollectionSimulation, SimulationConfig
from repro.net.sim import Simulator
from repro.net.topology import grid_topology, line_topology


class TestTtlDrops:
    def test_packets_dropped_at_hop_limit(self):
        """A TTL smaller than the path length kills deep-origin packets."""
        topo = line_topology(6)
        sim = CollectionSimulation(
            topo,
            seed=71,
            config=SimulationConfig(
                duration=60.0,
                traffic_period=3.0,
                max_hops=2,
                routing=RoutingConfig(etx_noise_std=0.0),
            ),
            link_assigner=uniform_loss_assigner(0.0, 0.02),
        )
        result = sim.run()
        assert result.ground_truth.drop_reasons.get("ttl", 0) > 0
        # Origins within the TTL still deliver.
        near = [p for p in result.packets if p.origin <= 2]
        assert near and all(p.delivered for p in near)
        far = [p for p in result.packets if p.origin >= 3]
        assert far and all(not p.delivered for p in far)


class TestSimulatorJitter:
    def test_every_with_jitter_still_fires(self):
        sim = Simulator()
        fires = []
        sim.every(1.0, lambda: fires.append(sim.now), jitter=lambda: 0.3)
        sim.run_until(10.0)
        assert len(fires) >= 6
        gaps = [b - a for a, b in zip(fires, fires[1:])]
        assert all(g == pytest.approx(1.3) for g in gaps)

    def test_negative_jitter_clamped(self):
        sim = Simulator()
        fires = []
        sim.every(1.0, lambda: fires.append(sim.now), jitter=lambda: -5.0)
        sim.run(max_events=50)
        # Period+jitter clamps to epsilon; events still advance monotonically.
        assert fires == sorted(fires)
        assert len(fires) == 50


class TestTopologyEdges:
    def test_distance_requires_positions(self):
        import networkx as nx

        from repro.net.topology import Topology

        topo = Topology(nx.path_graph(3), sink=0, positions=None)
        with pytest.raises(KeyError):
            topo.distance(0, 1)

    def test_max_depth_grid(self):
        assert grid_topology(3, 3).max_depth == 4  # manhattan corner-to-corner
        assert grid_topology(3, 3, diagonal=True).max_depth == 2


class TestMacAckLossSystemLevel:
    def test_system_runs_with_lossy_acks(self):
        """End-to-end: ACK losses cause duplicates but never deadlock, and
        Dophy's receiver-side counts stay accurate."""
        from repro.core.config import DophyConfig
        from repro.core.dophy import DophySystem

        dophy = DophySystem(DophyConfig())
        topo = line_topology(4)
        sim = CollectionSimulation(
            topo,
            seed=72,
            config=SimulationConfig(
                duration=300.0,
                traffic_period=2.0,
                mac=MacConfig(max_retries=30, ack_losses=True),
                routing=RoutingConfig(etx_noise_std=0.0),
            ),
            link_assigner=uniform_loss_assigner(0.1, 0.3),
            observers=[dophy],
        )
        result = sim.run()
        assert result.delivery_ratio > 0.9
        report = dophy.report()
        assert report.decode_failures == 0
        # Receiver-side counts measure the *forward* link, so estimates
        # stay close to its configured loss even with lossy ACKs.
        truth = result.ground_truth.true_loss_map(kind="model")
        for link, est in report.estimates.items():
            if est.n_samples >= 100:
                assert abs(est.loss - truth[link]) < 0.08
