"""Tests for the spatially-correlated interference model."""

import numpy as np
import pytest

from repro.net.interference import (
    Interferer,
    InterfererField,
    interference_assigner,
)
from repro.net.link import Channel
from repro.net.simulation import CollectionSimulation, SimulationConfig
from repro.net.routing import RoutingConfig
from repro.net.topology import grid_topology, line_topology, random_geometric_topology
from repro.utils.rng import RngRegistry, derive_rng


def make_interferer(mean_on=10.0, mean_off=30.0, start_on=False, seed=1, **kw):
    defaults = dict(position=(0.5, 0.5), radius=0.3, loss_penalty=0.4)
    defaults.update(kw)
    return Interferer(
        rng=derive_rng(seed, "i"), mean_on=mean_on, mean_off=mean_off,
        start_on=start_on, **defaults,
    )


class TestInterferer:
    def test_on_off_cycles(self):
        i = make_interferer(mean_on=5.0, mean_off=5.0)
        states = [i.is_on(t) for t in np.linspace(0, 500, 2000)]
        on_fraction = sum(states) / len(states)
        assert 0.3 < on_fraction < 0.7  # roughly half with equal means

    def test_duty_cycle_tracks_means(self):
        i = make_interferer(mean_on=5.0, mean_off=45.0, seed=3)
        states = [i.is_on(t) for t in np.linspace(0, 2000, 8000)]
        assert sum(states) / len(states) < 0.25

    def test_monotone_time_queries(self):
        i = make_interferer()
        a = i.is_on(10.0)
        b = i.is_on(10.0)
        assert a == b  # repeated queries at the same time agree

    def test_affects_radius(self):
        i = make_interferer(position=(0.0, 0.0), radius=0.5)
        assert i.affects((0.3, 0.3))
        assert not i.affects((0.5, 0.5))

    def test_validation(self):
        with pytest.raises(ValueError):
            make_interferer(radius=0.0)
        with pytest.raises(ValueError):
            make_interferer(loss_penalty=1.5)
        with pytest.raises(ValueError):
            make_interferer(mean_on=0.0)


class TestInterfererField:
    def test_random_field_reproducible(self):
        topo = random_geometric_topology(20, seed=4)
        a = InterfererField.random(topo, seed=9, num_interferers=4)
        b = InterfererField.random(topo, seed=9, num_interferers=4)
        assert [i.position for i in a.interferers] == [i.position for i in b.interferers]

    def test_penalty_sums_active_nearby(self):
        field = InterfererField(
            [
                make_interferer(position=(0.0, 0.0), radius=1.0,
                                loss_penalty=0.2, start_on=True,
                                mean_on=1e9, mean_off=1.0),
                make_interferer(position=(0.1, 0.0), radius=1.0,
                                loss_penalty=0.3, start_on=True,
                                mean_on=1e9, mean_off=1.0, seed=2),
                make_interferer(position=(5.0, 5.0), radius=0.1,
                                loss_penalty=0.9, start_on=True,
                                mean_on=1e9, mean_off=1.0, seed=3),
            ]
        )
        assert field.penalty_at((0.0, 0.0), 0.0) == pytest.approx(0.5)
        assert field.active_count(0.0) == 3

    def test_negative_count_rejected(self):
        topo = random_geometric_topology(10, seed=1)
        with pytest.raises(ValueError):
            InterfererField.random(topo, seed=1, num_interferers=-1)


class TestInterferedLinks:
    def test_loss_rises_when_interferer_on(self):
        topo = grid_topology(3, 3)
        # One always-on interferer covering the whole grid.
        field = InterfererField(
            [make_interferer(position=(1.0, 1.0), radius=5.0,
                             loss_penalty=0.4, start_on=True,
                             mean_on=1e9, mean_off=1.0)]
        )
        channel = Channel.build(
            topo,
            interference_assigner(topo, field, base_low=0.05, base_high=0.05),
            RngRegistry(5),
        )
        assert channel.true_loss(1, 0, 0.0) == pytest.approx(0.45)

    def test_spatial_correlation(self):
        """Links near the interferer degrade together; far links don't."""
        topo = grid_topology(2, 8, spacing=1.0)  # long strip
        field = InterfererField(
            [make_interferer(position=(0.0, 0.0), radius=1.5,
                             loss_penalty=0.5, start_on=True,
                             mean_on=1e9, mean_off=1.0)]
        )
        channel = Channel.build(
            topo, interference_assigner(topo, field, base_low=0.05, base_high=0.05),
            RngRegistry(6),
        )
        near = channel.true_loss(8, 0, 0.0)   # nodes at x=0 (ids 0 and 8)
        far = channel.true_loss(15, 7, 0.0)   # nodes at x=7
        assert near > 0.5 and far < 0.1

    def test_requires_positions(self):
        import networkx as nx

        from repro.net.topology import Topology

        topo = Topology(nx.path_graph(3), sink=0, positions=None)
        field = InterfererField([])
        with pytest.raises(ValueError):
            interference_assigner(topo, field)

    def test_full_simulation_with_interference(self):
        from repro.core.dophy import DophySystem

        topo = random_geometric_topology(25, seed=7)
        field = InterfererField.random(
            topo, seed=7, num_interferers=3, mean_on=15.0, mean_off=40.0
        )
        dophy = DophySystem()
        sim = CollectionSimulation(
            topo,
            seed=7,
            config=SimulationConfig(
                duration=200.0, traffic_period=3.0,
                routing=RoutingConfig(etx_noise_std=0.2),
            ),
            link_assigner=interference_assigner(topo, field),
            observers=[dophy],
        )
        result = sim.run()
        assert result.delivery_ratio > 0.7
        report = dophy.report()
        assert report.decode_failures == 0
        # Estimates track the *realized* loss even with interference bursts.
        truth = result.ground_truth.true_loss_map(kind="empirical")
        errs = [
            abs(est.loss - truth[link])
            for link, est in report.estimates.items()
            if est.n_samples >= 100 and link in truth
        ]
        assert errs and sum(errs) / len(errs) < 0.06
