"""Integration tests for the collection simulation driver."""

import pytest

from repro.net.link import uniform_loss_assigner
from repro.net.mac import MacConfig
from repro.net.routing import RoutingConfig
from repro.net.simulation import (
    CollectionSimulation,
    NullObserver,
    SimulationConfig,
)
from repro.net.topology import grid_topology, line_topology, random_geometric_topology


def quick_config(duration=60.0, **kw):
    return SimulationConfig(
        duration=duration,
        traffic_period=kw.pop("traffic_period", 5.0),
        routing=kw.pop("routing", RoutingConfig(etx_noise_std=0.0)),
        **kw,
    )


class TestBasicRun:
    def test_line_network_delivers(self):
        topo = line_topology(4)
        sim = CollectionSimulation(
            topo,
            seed=1,
            config=quick_config(),
            link_assigner=uniform_loss_assigner(0.05, 0.15),
        )
        result = sim.run()
        assert result.ground_truth.packets_generated > 20
        assert result.delivery_ratio > 0.9

    def test_packets_record_paths(self):
        topo = line_topology(5)
        sim = CollectionSimulation(
            topo, seed=2, config=quick_config(), link_assigner=uniform_loss_assigner(0.0, 0.05)
        )
        result = sim.run()
        for p in result.delivered_packets:
            assert p.path[0] == p.origin
            assert p.path[-1] == 0
            # On a line the path from node k has exactly k hops.
            assert p.hop_count == p.origin

    def test_reproducibility(self):
        def run():
            topo = grid_topology(3, 3, diagonal=True)
            sim = CollectionSimulation(
                topo, seed=42, config=quick_config(), link_assigner=uniform_loss_assigner(0.1, 0.3)
            )
            r = sim.run()
            return (
                r.ground_truth.packets_generated,
                r.ground_truth.packets_delivered,
                [(p.origin, p.seqno, tuple(p.path)) for p in r.delivered_packets],
            )

        assert run() == run()

    def test_cannot_run_twice(self):
        topo = line_topology(3)
        sim = CollectionSimulation(topo, seed=1, config=quick_config(duration=10.0))
        sim.run()
        with pytest.raises(RuntimeError):
            sim.run()

    def test_channel_and_assigner_mutually_exclusive(self):
        topo = line_topology(3)
        from repro.net.link import Channel
        from repro.utils.rng import RngRegistry

        reg = RngRegistry(0)
        ch = Channel.build(topo, uniform_loss_assigner(0.1, 0.2), reg)
        with pytest.raises(ValueError):
            CollectionSimulation(
                topo, seed=0, channel=ch, link_assigner=uniform_loss_assigner(0, 0.1)
            )


class TestLossAndDrops:
    def test_bad_links_cause_drops(self):
        topo = line_topology(6)
        sim = CollectionSimulation(
            topo,
            seed=3,
            config=quick_config(mac=MacConfig(max_retries=1)),
            link_assigner=uniform_loss_assigner(0.4, 0.6),
        )
        result = sim.run()
        assert result.ground_truth.packets_dropped > 0
        assert result.ground_truth.drop_reasons.get("retries", 0) > 0
        assert result.delivery_ratio < 1.0

    def test_retries_rescue_delivery(self):
        def delivery(max_retries):
            topo = line_topology(5)
            sim = CollectionSimulation(
                topo,
                seed=4,
                config=quick_config(mac=MacConfig(max_retries=max_retries)),
                link_assigner=uniform_loss_assigner(0.3, 0.4),
            )
            return sim.run().delivery_ratio

        assert delivery(10) > delivery(0)

    def test_ground_truth_tracks_all_packets(self):
        topo = grid_topology(3, 3)
        sim = CollectionSimulation(
            topo, seed=5, config=quick_config(), link_assigner=uniform_loss_assigner(0.1, 0.4)
        )
        result = sim.run()
        gt = result.ground_truth
        # A few packets may still be in flight at cutoff; allow small slack.
        settled = gt.packets_delivered + gt.packets_dropped
        assert settled >= gt.packets_generated - 3
        assert gt.delivery_ratio == pytest.approx(
            gt.packets_delivered / gt.packets_generated
        )


class TestObservers:
    def test_observer_sees_full_lifecycle(self):
        events = []

        class Recorder(NullObserver):
            def on_packet_created(self, packet, time):
                events.append(("created", packet.key))

            def on_hop_delivered(self, packet, sender, receiver, first_attempt, time):
                events.append(("hop", packet.key, sender, receiver, first_attempt))

            def on_packet_delivered(self, packet, time):
                events.append(("delivered", packet.key))

        topo = line_topology(3)
        sim = CollectionSimulation(
            topo,
            seed=6,
            config=quick_config(duration=20.0),
            link_assigner=uniform_loss_assigner(0.0, 0.05),
            observers=[Recorder()],
        )
        result = sim.run()
        created = [e for e in events if e[0] == "created"]
        delivered = [e for e in events if e[0] == "delivered"]
        hops = [e for e in events if e[0] == "hop"]
        assert len(created) == result.ground_truth.packets_generated
        assert len(delivered) == result.ground_truth.packets_delivered
        assert all(h[4] >= 1 for h in hops)

    def test_hop_attempt_matches_ground_truth(self):
        """Observer-visible first_attempt equals the simulator's hop record."""
        seen = {}

        class Recorder(NullObserver):
            def on_hop_delivered(self, packet, sender, receiver, first_attempt, time):
                seen.setdefault(packet.key, []).append((sender, receiver, first_attempt))

        topo = line_topology(4)
        sim = CollectionSimulation(
            topo,
            seed=7,
            config=quick_config(duration=30.0),
            link_assigner=uniform_loss_assigner(0.2, 0.4),
            observers=[Recorder()],
        )
        result = sim.run()
        for p in result.delivered_packets:
            observed = seen[p.key]
            truth = [(h.sender, h.receiver) for h in p.hops if h.delivered]
            assert [(s, r) for s, r, _ in observed] == truth

    def test_add_observer_after_run_rejected(self):
        topo = line_topology(3)
        sim = CollectionSimulation(topo, seed=8, config=quick_config(duration=5.0))
        sim.run()
        with pytest.raises(RuntimeError):
            sim.add_observer(NullObserver())


class TestDynamicNetwork:
    def test_churn_happens_under_noise(self):
        topo = random_geometric_topology(40, seed=10)
        sim = CollectionSimulation(
            topo,
            seed=10,
            config=quick_config(
                duration=120.0,
                routing=RoutingConfig(
                    etx_noise_std=0.7, parent_switch_threshold=0.1, beacon_period=2.0
                ),
            ),
            link_assigner=uniform_loss_assigner(0.05, 0.35),
        )
        result = sim.run()
        assert result.routing.total_parent_changes > 0
        assert result.churn_rate > 0
        assert result.delivery_ratio > 0.5

    def test_paths_vary_across_packets_under_churn(self):
        topo = grid_topology(4, 4, diagonal=True)
        sim = CollectionSimulation(
            topo,
            seed=11,
            config=quick_config(
                duration=150.0,
                traffic_period=3.0,
                routing=RoutingConfig(
                    etx_noise_std=0.8, parent_switch_threshold=0.0, beacon_period=1.0
                ),
            ),
            link_assigner=uniform_loss_assigner(0.05, 0.3),
        )
        result = sim.run()
        far_corner = 15
        paths = {
            tuple(p.path) for p in result.delivered_packets if p.origin == far_corner
        }
        assert len(paths) > 1  # the same origin used different routes


class TestConfigValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            SimulationConfig(duration=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(traffic_period=-1.0)
        with pytest.raises(ValueError):
            SimulationConfig(traffic_jitter=1.0)
        with pytest.raises(ValueError):
            SimulationConfig(max_hops=0)
        with pytest.raises(ValueError):
            SimulationConfig(forward_delay=-0.1)


class TestDropFinality:
    """Regression for the forwarding bug sweep: once a packet drops (TTL,
    retries, no route), no later hop of it may fire — and the drop must
    not stall the dropping node's transmit queue."""

    @pytest.mark.parametrize("engine", ["event", "array"])
    def test_ttl_drop_is_final_and_queue_keeps_flowing(self, engine):
        topo = line_topology(6)
        sim = CollectionSimulation(
            topo,
            seed=4,
            config=quick_config(
                duration=80.0, traffic_period=2.0, max_hops=2, engine=engine
            ),
            link_assigner=uniform_loss_assigner(0.02, 0.08),
        )
        result = sim.run()
        ttl_dropped = [p for p in result.packets if p.drop_reason == "ttl"]
        assert ttl_dropped, "far nodes need > 2 hops, so TTL drops must occur"
        for packet in ttl_dropped:
            assert not packet.delivered
            # The TTL check fires *before* a third exchange starts: the
            # hop trace ends at the budget, and every recorded hop
            # completed before the drop was declared.
            assert len(packet.hops) == 2
            assert all(h.time <= packet.dropped_at for h in packet.hops)
        # Nodes within the budget still deliver: drops neither wedge the
        # relays' queues nor leak into other packets' journeys.
        near = [p for p in result.packets if p.origin in (1, 2)]
        assert any(p.delivered for p in near)
        settled = sum(1 for p in result.packets if p.delivered or p.dropped)
        assert settled >= len(result.packets) - 3  # only in-flight at cutoff

    @pytest.mark.parametrize("engine", ["event", "array"])
    def test_every_drop_reason_terminates_the_trace(self, engine):
        topo = random_geometric_topology(14, seed=2)
        sim = CollectionSimulation(
            topo,
            seed=11,
            config=quick_config(
                duration=80.0,
                traffic_period=1.0,
                max_hops=4,
                engine=engine,
                mac=MacConfig(max_retries=1),
            ),
            link_assigner=uniform_loss_assigner(0.3, 0.6),
        )
        result = sim.run()
        reasons = {p.drop_reason for p in result.packets if p.dropped}
        assert "retries" in reasons or "ttl" in reasons
        for packet in result.packets:
            if not packet.dropped:
                continue
            assert packet.delivered_at is None
            assert len(packet.hops) <= 4
            if packet.drop_reason == "retries":
                # The failed exchange is the last hop on record, marked
                # undelivered; nothing may follow it.
                assert packet.hops and not packet.hops[-1].delivered
            else:
                assert all(h.delivered for h in packet.hops)
